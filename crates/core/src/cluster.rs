//! The serving cluster and its discrete-event loop.
//!
//! A [`Cluster`] is one deployment of one engine kind on one hardware setup: either two
//! single-GPU instances behind the user-id router, or a single TP/PP instance spanning
//! both GPUs.  [`Cluster::run`] replays a workload trace (requests with Poisson arrival
//! times) against the deployment and produces the [`RunReport`] every figure of the
//! evaluation is computed from.
//!
//! # Parallel replay and windowed routing
//!
//! No event ever crosses instances: an `Admit` or `Complete` event only touches the
//! instance that produced it.  Replicated deployments therefore factor into
//! independent per-instance event loops, and [`Cluster::run`] simulates them on
//! parallel OS threads — one per instance — then merges the per-instance records
//! deterministically.  The result is *identical* (records, makespan, cache
//! statistics) to the single-threaded interleaved loop, which is kept as
//! [`Cluster::run_sequential`] and enforced by the
//! `parallel_run_is_identical_to_sequential` test.
//!
//! Routing is what could break that factoring: a policy that consults instance state
//! mid-window would couple the per-instance loops.  Instead, every `run` call is one
//! *replay window*: the configured [`RoutingPolicy`](crate::routing) routes **all**
//! arrivals up front, in `(arrival time, trace index)` order, against a
//! [`RouterSnapshot`](crate::routing::RouterSnapshot) of the window-start state
//! (modelled loads updated with the pass's own decisions; frozen three-tier prefix
//! probes for cache-aware policies) — mirroring the snapshot-install/merge discipline
//! of the shared network KV tier.  Both replay paths run the identical pass, so the
//! partition, and hence the replay, is byte-identical.
//!
//! # Propagation epochs (`net_propagation_ms > 0`)
//!
//! With a finite [`EngineConfig::net_propagation_ms`] the window is subdivided into
//! deterministic *propagation epochs* of that length.  Each epoch repeats the window
//! discipline in miniature, in lockstep across all instances:
//!
//! 1. every instance receives a [`NetKvPool::visible_snapshot`] of the shared tier —
//!    the entries whose publish time (`spill time + delay`) has passed the epoch
//!    start;
//! 2. the epoch's arrivals are routed in `(arrival time, trace index)` order against
//!    a *fresh* [`RouterSnapshot`](crate::routing::RouterSnapshot) (live loads carry
//!    queued work over from earlier epochs; prefix probes are re-captured,
//!    incrementally, instead of staying frozen for the whole window);
//! 3. the per-instance loops simulate strictly up to the epoch boundary — pending
//!    events beyond it stay queued — and the boundary is a barrier: every thread
//!    reaches it before the per-instance tier snapshots merge back into the shared
//!    pool, deterministically in instance-id order, and the next epoch begins.
//!
//! A spill therefore surfaces on other instances at the first epoch boundary past
//! its publish time (between one and two delays after it happened) instead of at the
//! window's end, while the per-epoch factoring keeps the parallel replay
//! byte-identical to the sequential reference: within an epoch nothing crosses
//! instances, exactly as within a delay-zero window.  `net_propagation_ms = 0` keeps
//! the historical single-pass window byte for byte (pinned by regression test).
//!
//! # Membership events (elastic fleet)
//!
//! The instance count itself can change mid-trace: [`Cluster::schedule_membership`]
//! registers join/drain events, and [`AutoscalerPolicy`](crate::AutoscalerPolicy)
//! derives further events from the routable fleet's load.  Every change is applied
//! at an epoch *boundary* — the one barrier where no instance is mid-simulation —
//! and is therefore a pure function of the trace and the completed epochs, so
//! parallel and sequential replay resize the fleet identically and the
//! byte-identity guarantee survives elasticity.  Joins reuse the lowest retired
//! slot (or grow the fleet) and enter warmed through the shared network tier;
//! drains stop receiving work, finish what they hold, spill their reusable KV into
//! the shared tier (the drain-to-net handoff) and retire at the first boundary
//! they reach idle.  Slots are never removed or renumbered, which keeps every
//! queued event's instance tag stable.  See `ARCHITECTURE.md` ("Membership
//! events") for the full determinism argument.
//!
//! # Streaming replay
//!
//! [`Cluster::run_stream`] replays an [`ArrivalStream`] — a generator of
//! event-time-ordered, stamped arrivals — without ever materialising the trace:
//! arrivals are pulled lazily, buffered one epoch at a time, routed per epoch
//! (reusing one [`RoutingScratch`] across epochs, so steady-state routing
//! allocates nothing), and simulated strictly to the epoch boundary.  Peak
//! arrival memory is O(largest epoch), which is what lets a million-request
//! trace replay in a few hundred megabytes instead of tens of gigabytes.
//!
//! Epoch boundaries come from an adaptive clock ([`EpochLengthPolicy`]): the
//! next epoch's length is a pure function of the configuration and the arrival
//! counts of *completed* epochs — shorter under burst, longer when idle — so
//! parallel and sequential replay (and any rerun) cut the stream identically and
//! the byte-identity guarantee carries over unchanged.  Deployments with
//! propagation epochs replay byte-identically to [`Cluster::run`] on the
//! materialised trace; without the shared tier the chunk cadence is a
//! routing-snapshot cadence only (state-dependent policies see refreshed loads
//! per chunk, which whole-window replay by design does not), and the tier
//! snapshots are installed once up front and merged once at the end, exactly as
//! a single window.
//!
//! Why the per-instance loops are sound: within one instance, the global loop pops
//! that instance's events in `(time, push order)` — and the per-instance loop pushes
//! the same events in the same relative order, because an instance's pushes happen
//! only while handling that same instance's events.  Projecting the global
//! FIFO-within-timestamp order onto one instance therefore yields exactly the
//! per-instance order.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

use simcore::{EventQueue, SimDuration, SimTime};

use kvcache::{
    hash_token_blocks, CacheStats, DrainSpill, HandoffLedger, HandoffRecord, NetKvPool,
    NetPoolView, OffloadStats, PrefixProbe, ViewDelta,
};
use workload::{
    ArrivalPattern, ArrivalStream, InstanceRole, MembershipChange, MembershipSchedule,
    SliceArrivalStream, SortedTrace, StreamedArrival,
};

use crate::baselines::engine_display_name;
use crate::config::{ConfigError, EngineConfig, EpochLengthPolicy};
use crate::instance::{EngineInstance, HandoffAdmission, InstanceProfile, KvHandoff};
use crate::report::{RequestRecord, RunReport, SlotWindow, WindowMetrics};
use crate::request::PrefillRequest;
use crate::routing::{
    InstanceLoad, RouteQuery, RouterSnapshot, RoutingDecision, RoutingPolicy, RoutingReason,
};

/// Base chunk length of a streamed replay without propagation epochs (the clock
/// adapts from here towards the arrival target).
const STREAM_CHUNK_BASE_MS: u64 = 1_000;
/// Arrivals per chunk the tierless streaming clock self-paces towards: large
/// enough to amortise the per-chunk routing snapshot, small enough that the
/// arrival buffer stays a sliver of a million-request trace.
const STREAM_CHUNK_TARGET_ARRIVALS: u64 = 4_096;
/// Ceiling on a tierless streaming chunk, so a long idle gap cannot grow the
/// chunk (and hence the arrival buffer) without bound.
const STREAM_CHUNK_MAX_MS: u64 = 60_000;

/// Why a workload could not be replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// The longest request of the workload exceeds the engine's maximum input length —
    /// the ✗ entries of Table 2.
    WorkloadInfeasible {
        /// Longest request in the trace.
        max_request_tokens: u64,
        /// The engine's maximum input length.
        max_input_length: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::WorkloadInfeasible {
                max_request_tokens,
                max_input_length,
            } => write!(
                f,
                "workload needs requests of {max_request_tokens} tokens but the engine's \
                 maximum input length is {max_input_length}"
            ),
        }
    }
}

impl std::error::Error for RunError {}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// The request at this index (into the window's trace, or the current epoch's
    /// batch on the streaming path) reaches the router.
    Arrival(usize),
    /// An instance may be able to admit another request.
    Admit(usize),
    /// A running request finishes on an instance.
    Complete { instance: usize, request_id: u64 },
}

/// Event of one instance's private loop (the instance is implicit).
#[derive(Debug, Clone, Copy)]
enum InstanceEvent {
    /// The request at this index of the instance's partition arrives.
    Arrival(usize),
    /// The instance may be able to admit another request.
    Admit,
    /// A running request finishes.
    Complete(u64),
}

/// One window's routing outcome: a decision per trace index, plus the
/// `(arrival time, index)` iteration order the pass used (`None` = the trace was
/// already sorted, so the order is the identity).
struct RoutedWindow {
    decisions: Vec<RoutingDecision>,
    order: Option<Vec<usize>>,
    /// Block-hash chains the routing pass computed to probe instances (per trace
    /// index; empty when the policy needed none), handed to `enqueue` so the tokens
    /// are hashed once, not twice.
    hashes: Vec<Option<Arc<Vec<kvcache::TokenBlockHash>>>>,
}

impl RoutedWindow {
    /// Takes the routing-time hash chain of one arrival, if any was computed.
    fn take_hashes(&mut self, idx: usize) -> Option<Arc<Vec<kvcache::TokenBlockHash>>> {
        self.hashes.get_mut(idx).and_then(Option::take)
    }
}

/// One routed arrival of an instance's replay partition.  Owns what simulation
/// needs (token ownership is an `Arc` bump, not a copy), so the streaming path
/// can refill partitions per epoch without borrowing from an epoch-lived buffer.
struct PartitionEntry {
    /// Stream-wide request id (the arrival's trace index on the slice path).
    request_id: u64,
    /// Why routing placed it on this instance.
    reason: RoutingReason,
    /// The routing pass's hash chain, if it computed one (reused at enqueue).
    hashes: Option<Arc<Vec<kvcache::TokenBlockHash>>>,
    /// The user the request belongs to.
    user_id: u64,
    /// The request's full token sequence (prompt plus decoded reply).
    tokens: Arc<Vec<u32>>,
    /// Of `tokens`, the trailing count decoded iteratively (0 = prefill-only).
    decode_tokens: u64,
    /// When the request arrives.
    arrival: SimTime,
}

/// Reusable buffers of a routing pass.  Epoch-driven replay routes thousands of
/// passes per window; this keeps every per-pass allocation — the decision and
/// hash-chain slots, and the [`RouterSnapshot`]'s load/probe vectors, recovered
/// via [`RouterSnapshot::into_buffers`] after each pass — alive across epochs.
///
/// Public so routing benchmarks can measure a pass without re-paying the
/// allocations ([`Cluster::route_preview`]); replay entry points manage their
/// own scratch internally.
#[derive(Debug, Default)]
pub struct RoutingScratch {
    decisions: Vec<RoutingDecision>,
    hashes: Vec<Option<Arc<Vec<kvcache::TokenBlockHash>>>>,
    loads: Vec<InstanceLoad>,
    probes: Vec<PrefixProbe>,
}

impl RoutingScratch {
    /// Fresh, empty scratch (buffers grow to the largest epoch routed and stay).
    pub fn new() -> RoutingScratch {
        RoutingScratch::default()
    }

    /// The decisions of the most recent routing pass, one per batch position.
    pub fn decisions(&self) -> &[RoutingDecision] {
        &self.decisions
    }

    /// Takes the routing-time hash chain of one batch position, if any.
    fn take_hashes(&mut self, pos: usize) -> Option<Arc<Vec<kvcache::TokenBlockHash>>> {
        self.hashes.get_mut(pos).and_then(Option::take)
    }
}

/// Deterministic generator of propagation-epoch boundaries (see
/// [`EpochLengthPolicy`]): the next boundary is a pure function of the
/// configuration and the arrival counts of completed epochs, so parallel and
/// sequential replay — and any number of reruns — cut the window identically.
#[derive(Debug)]
struct EpochClock {
    policy: EpochLengthPolicy,
    len_ms: u64,
    boundary: SimTime,
}

impl EpochClock {
    fn new(base_ms: u64, policy: EpochLengthPolicy) -> EpochClock {
        debug_assert!(base_ms > 0, "epoch clocks need a finite base length");
        let len_ms = match policy {
            EpochLengthPolicy::Fixed => base_ms,
            EpochLengthPolicy::Adaptive { min_ms, max_ms, .. } => base_ms.clamp(min_ms, max_ms),
        };
        EpochClock {
            policy,
            len_ms,
            boundary: SimTime::ZERO + SimDuration::from_millis(len_ms),
        }
    }

    /// End of the current epoch (exclusive: the epoch covers arrivals strictly
    /// before it).
    fn boundary(&self) -> SimTime {
        self.boundary
    }

    /// Closes the current epoch, adapting the next epoch's length to the closed
    /// epoch's arrival count: halve under burst (more than twice the target),
    /// double when near-idle (less than half the target), clamped to the
    /// configured bounds.  [`EpochLengthPolicy::Fixed`] never adapts.
    fn advance(&mut self, arrivals_in_epoch: u64) {
        if let EpochLengthPolicy::Adaptive {
            target_arrivals,
            min_ms,
            max_ms,
        } = self.policy
        {
            if arrivals_in_epoch > target_arrivals.saturating_mul(2) {
                self.len_ms = (self.len_ms / 2).max(min_ms);
            } else if arrivals_in_epoch.saturating_mul(2) < target_arrivals {
                self.len_ms = self.len_ms.saturating_mul(2).min(max_ms);
            }
        }
        self.boundary += SimDuration::from_millis(self.len_ms);
    }
}

/// Lifecycle state of one instance slot.  Slots are never removed or renumbered
/// (queued events tag instances by slot index), they only change state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Routable: the slot accepts new arrivals.
    Active {
        /// Whether the slot participates in the shared network tier
        /// (snapshot install/merge).  Cold joins stay detached for life.
        attached: bool,
    },
    /// Unroutable but still simulating: the slot finishes the work it holds and
    /// retires at the first epoch boundary it reaches idle.
    Draining {
        /// Carried over from the slot's active life.
        attached: bool,
        /// Whether retirement publishes the slot's reusable KV into the shared
        /// tier (the drain-to-net handoff).
        spill: bool,
    },
    /// Empty: the slot neither routes nor simulates, and the next join reuses it.
    Retired,
}

impl SlotState {
    /// Whether the slot takes part in shared-tier snapshot install/merge.
    fn attached(self) -> bool {
        matches!(
            self,
            SlotState::Active { attached: true } | SlotState::Draining { attached: true, .. }
        )
    }

    fn is_active(self) -> bool {
        matches!(self, SlotState::Active { .. })
    }
}

/// One membership change the replay applied, for observability (tests, the
/// elasticity ablation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppliedMembership {
    /// The epoch boundary the change was applied at.
    pub at: SimTime,
    /// What changed.
    pub change: MembershipChange,
    /// The instance slot affected.
    pub slot: usize,
    /// `true` when the autoscaler derived the change, `false` when it was
    /// scheduled via [`Cluster::schedule_membership`].
    pub autoscaled: bool,
}

/// One completed drain: the boundary the slot retired at and what its
/// drain-to-net spill published.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainRecord {
    /// The slot that retired.
    pub slot: usize,
    /// The epoch boundary it reached idle (spill publish stamp).
    pub retired_at: SimTime,
    /// Drain-to-net spill accounting (all zeros for `spill: false` drains or
    /// tierless deployments).
    pub spill: DrainSpill,
}

/// A borrow-carrying job of one parallel batch: runs one instance's slice of the
/// window/epoch against state borrowed from the caller's stack frame.
type ScopedJob<'a> = Box<dyn FnOnce() + Send + 'a>;

/// What the workers pull: jobs erased to `'static` (sound because
/// [`WorkerPool::run_batch`] blocks until the whole batch completed — see its
/// safety comment).
type QueuedJob = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool's owner and its worker threads.
struct PoolShared {
    queue: Mutex<WorkerQueue>,
    work_ready: Condvar,
}

struct WorkerQueue {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
}

impl PoolShared {
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("worker pool poisoned");
                loop {
                    if let Some(job) = queue.jobs.pop_front() {
                        break Some(job);
                    }
                    if queue.shutdown {
                        break None;
                    }
                    queue = self.work_ready.wait(queue).expect("worker pool poisoned");
                }
            };
            match job {
                Some(job) => job(),
                None => return,
            }
        }
    }
}

/// One batch's completion latch: counts jobs down and carries the first panic
/// payload back to the submitting thread.
struct BatchLatch {
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl BatchLatch {
    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().expect("batch latch poisoned");
        state.remaining -= 1;
        if let Some(payload) = panic {
            state.panic.get_or_insert(payload);
        }
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every job of the batch ran, then re-raises the first panic (the
    /// same observable behaviour as joining `std::thread::scope` handles).
    fn wait(&self) {
        let mut state = self.state.lock().expect("batch latch poisoned");
        while state.remaining > 0 {
            state = self.done.wait(state).expect("batch latch poisoned");
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            std::panic::resume_unwind(payload);
        }
    }
}

/// A persistent pool of worker threads for the parallel replay flavour.
///
/// `std::thread::scope` spawns and tears a thread down per instance *per epoch* —
/// measurable pure overhead at propagation-epoch cadence (thousands of boundaries
/// per fleet-scale window).  This pool spawns `available_parallelism - 1` workers
/// once (the submitting thread is the remaining lane: it drains the same queue
/// instead of idling, so a single-core host degrades to exactly the sequential
/// inline execution) and reuses them for every subsequent batch, across epochs
/// *and* replay windows.
///
/// [`Self::run_batch`] has `thread::scope` semantics: it returns only after every
/// job of the batch ran, and re-raises the first job panic.
struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new() -> WorkerPool {
        let workers = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .saturating_sub(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(WorkerQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || shared.worker_loop())
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Runs the batch to completion: queues every job for the workers, helps drain
    /// the queue from the submitting thread, then blocks until the last job
    /// finished (re-raising the first panic, if any).
    fn run_batch(&self, jobs: Vec<ScopedJob<'_>>) {
        if jobs.is_empty() {
            return;
        }
        let latch = Arc::new(BatchLatch {
            state: Mutex::new(BatchState {
                remaining: jobs.len(),
                panic: None,
            }),
            done: Condvar::new(),
        });
        {
            let mut queue = self.shared.queue.lock().expect("worker pool poisoned");
            for job in jobs {
                // SAFETY: the latch wait below keeps this stack frame alive until
                // every queued job has run to completion (panics included — the
                // catch_unwind still counts the latch down), so the `'a` borrows
                // the job captures strictly outlive the job.  This is the same
                // guarantee `std::thread::scope` provides, with the worker
                // threads outliving the scope instead of being joined by it.
                let job: QueuedJob =
                    unsafe { std::mem::transmute::<ScopedJob<'_>, ScopedJob<'static>>(job) };
                let latch = Arc::clone(&latch);
                queue.jobs.push_back(Box::new(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    latch.complete(result.err());
                }));
            }
            self.shared.work_ready.notify_all();
        }
        // Help drain the queue: the submitting thread is a full worker lane for
        // the duration of the batch (and the only one on a single-core host).
        loop {
            let job = {
                let mut queue = self.shared.queue.lock().expect("worker pool poisoned");
                queue.jobs.pop_front()
            };
            match job {
                Some(job) => job(),
                None => break,
            }
        }
        latch.wait();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("worker pool poisoned");
            queue.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A deployment of one engine kind on one hardware setup.
pub struct Cluster {
    /// Shared rather than owned: construction paths hand the same immutable
    /// configuration to the cluster, its instances and its callers without
    /// re-cloning it (see [`Self::new_shared`]).
    config: Arc<EngineConfig>,
    instances: Vec<EngineInstance>,
    /// Lifecycle state of each slot of `instances` (same length, same order).
    slot_states: Vec<SlotState>,
    /// The shared instance profile (instances of one deployment are identical),
    /// kept so joins can build fresh instances mid-replay.
    profile: InstanceProfile,
    /// The pluggable routing layer (see [`crate::routing`]); selected via
    /// [`EngineConfig::routing`], persists its state (e.g. sticky assignments)
    /// across replay windows.
    router: Box<dyn RoutingPolicy + Send>,
    /// The deployment's shared network KV tier (`None` when
    /// `net_kv_capacity_bytes` is 0).  Snapshots of this pool are installed into
    /// every instance at the start of each replay window and merged back — in
    /// instance-id order, deterministically — at its end, so cross-instance sharing
    /// materialises *between* windows (modelling network-tier propagation delay)
    /// while each window's parallel replay stays byte-identical to the sequential
    /// reference.
    net_pool: Option<NetKvPool>,
    /// Blocks the shared pool displaced while absorbing warm seeds and end-of-window
    /// snapshot merges.  Merge churn happens at the cluster, not inside any
    /// instance, so it is accounted here and folded into the report's
    /// `OffloadStats::net_evicted_blocks` alongside the instances' in-window
    /// evictions.
    net_merge_evictions: u64,
    /// Trace-scheduled membership events (sorted by time), consumed at epoch
    /// boundaries; `membership_cursor` is the first event not yet applied.
    membership: MembershipSchedule,
    membership_cursor: usize,
    /// Epoch boundaries left before the autoscaler may fire again (reset to the
    /// policy's `cooldown_epochs` by every applied scale action).
    autoscaler_cooldown: u64,
    /// Every membership change applied so far, in application order.
    membership_log: Vec<AppliedMembership>,
    /// Every completed drain, with its spill accounting.
    drain_records: Vec<DrainRecord>,
    /// Lifetime statistics of departed instances whose slots were reused — folded
    /// into the aggregated run report so elasticity never loses accounting.
    retired_cache: CacheStats,
    retired_offload: OffloadStats,
    /// The persistent worker pool of the parallel replay flavour: spawned lazily on
    /// the first multi-instance parallel window and reused across every epoch and
    /// window thereafter (replacing per-epoch thread spawn/teardown).
    worker_pool: Option<WorkerPool>,
    /// In-flight prefill→decode KV handoffs of the disaggregation plane, ordered
    /// by `(ready_at, request_id)`; drained at epoch boundaries exactly like
    /// published net-tier spills (see [`kvcache::HandoffLedger`]).
    handoff_ledger: HandoffLedger,
    /// The full payload of each in-flight handoff, keyed by request id (the
    /// ledger keeps only the deterministic accounting record).
    handoff_payloads: HashMap<u64, KvHandoff>,
    /// Per-boundary fleet samples collected when
    /// [`EngineConfig::track_window_metrics`] is set; drained into
    /// [`RunReport::windows`] by [`Self::finish_report`].
    window_metrics: Vec<WindowMetrics>,
}

impl Cluster {
    /// Builds the deployment: runs the instance profile **once** (instances of one
    /// deployment are identical), builds every engine instance from the shared
    /// profile, and sets up the routing policy plus the shared network KV tier.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`EngineConfig::validate`]; use
    /// [`Self::try_new`] to handle invalid configurations as values.
    pub fn new(config: &EngineConfig) -> Cluster {
        Cluster::try_new(config).expect("invalid deployment configuration")
    }

    /// Builds the deployment, surfacing configuration problems (e.g. a hardware
    /// setup with zero instances, which no router can serve) as a typed
    /// [`ConfigError`] instead of a panic.
    pub fn try_new(config: &EngineConfig) -> Result<Cluster, ConfigError> {
        Cluster::try_new_shared(Arc::new(config.clone()))
    }

    /// [`Self::new`] without the configuration clone: callers that own their
    /// `EngineConfig` (or already share it) hand over an `Arc` and the cluster,
    /// its accessor and every join-time instance build read the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`EngineConfig::validate`]; use
    /// [`Self::try_new_shared`] to handle invalid configurations as values.
    pub fn new_shared(config: Arc<EngineConfig>) -> Cluster {
        Cluster::try_new_shared(config).expect("invalid deployment configuration")
    }

    /// [`Self::try_new`] over a shared configuration (no clone).
    pub fn try_new_shared(config: Arc<EngineConfig>) -> Result<Cluster, ConfigError> {
        config.validate()?;
        let profile = InstanceProfile::new(&config);
        let num_instances = config.num_instances() as usize;
        let instances = (0..num_instances)
            .map(|id| EngineInstance::with_profile(&config, &profile, id))
            .collect();
        let net_pool = (config.net_kv_capacity_bytes > 0).then(|| {
            NetKvPool::new(config.net_kv_capacity_bytes, profile.kv_block_bytes())
                .with_propagation_delay(SimDuration::from_millis(config.net_propagation_ms))
        });
        let attached = net_pool.is_some();
        let mut router = config
            .routing
            .build(num_instances)
            .expect("validate() guarantees at least one instance");
        if config.disaggregated() {
            // Dedicated roles make the routable set a strict subset of the fleet
            // from the very first arrival: retire the stamped arithmetic fast
            // paths (which partition modulo *all* slots and would route onto
            // decode-only instances) exactly as a membership event would, and
            // pin routing to the prefill-capable slots.
            let routable: Vec<usize> = (0..num_instances)
                .filter(|&slot| config.role_of(slot).can_prefill())
                .collect();
            router.note_membership_change(&routable);
        }
        Ok(Cluster {
            config,
            instances,
            slot_states: vec![SlotState::Active { attached }; num_instances],
            profile,
            router,
            net_pool,
            net_merge_evictions: 0,
            membership: MembershipSchedule::default(),
            membership_cursor: 0,
            autoscaler_cooldown: 0,
            membership_log: Vec::new(),
            drain_records: Vec::new(),
            retired_cache: CacheStats::default(),
            retired_offload: OffloadStats::default(),
            worker_pool: None,
            handoff_ledger: HandoffLedger::default(),
            handoff_payloads: HashMap::new(),
            window_metrics: Vec::new(),
        })
    }

    /// Builds the deployment with an already-warm shared network tier — the
    /// "cold instance joins a warm deployment" scenario: every instance starts with
    /// empty GPU and CPU caches, but the cluster tier already holds prefixes
    /// computed elsewhere.
    ///
    /// The warm contents are merged into a pool sized by *this* deployment's
    /// `net_kv_capacity_bytes` (newest-first survival if the warm set overflows it),
    /// so the seeding pool's own capacity never overrides the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation, the deployment's network tier
    /// is disabled (`net_kv_capacity_bytes` is 0), or `pool` was built for a
    /// different block geometry; use [`Self::try_with_warm_net_pool`] to handle all
    /// of these as typed [`ConfigError`]s instead.
    pub fn with_warm_net_pool(config: &EngineConfig, pool: NetKvPool) -> Cluster {
        Cluster::try_with_warm_net_pool(config, pool)
            .unwrap_or_else(|err| panic!("invalid warm-join deployment: {err}"))
    }

    /// Builds the warm-join deployment of [`Self::with_warm_net_pool`], surfacing
    /// every construction problem — an undeployable configuration, a disabled
    /// network tier, a warm pool of foreign block geometry — as a typed
    /// [`ConfigError`] at this boundary instead of a panic deep inside instance
    /// construction.
    pub fn try_with_warm_net_pool(
        config: &EngineConfig,
        pool: NetKvPool,
    ) -> Result<Cluster, ConfigError> {
        let mut cluster = Cluster::try_new(config)?;
        let own = cluster
            .net_pool
            .as_mut()
            .ok_or(ConfigError::WarmPoolNeedsNetTier)?;
        if own.block_bytes() != pool.block_bytes() {
            return Err(ConfigError::WarmPoolGeometryMismatch {
                deployment_block_bytes: own.block_bytes(),
                pool_block_bytes: pool.block_bytes(),
            });
        }
        cluster.net_merge_evictions += own.merge_from(&pool);
        Ok(cluster)
    }

    /// The shared network KV tier, if enabled.  Clone it to seed another deployment
    /// via [`Self::with_warm_net_pool`].
    pub fn net_pool(&self) -> Option<&NetKvPool> {
        self.net_pool.as_ref()
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine instances.  Slots are never removed: drained slots keep their
    /// departed instance (and its statistics) until a join reuses them.
    pub fn instances(&self) -> &[EngineInstance] {
        &self.instances
    }

    /// Schedules trace-time membership events for the next replay.  Events apply
    /// at the first epoch boundary at or after their time — a pure function of
    /// the trace, so parallel and sequential replay resize identically (see the
    /// module docs, "Membership events").  Replaces any previously scheduled,
    /// not-yet-applied events; events a replay already consumed do not reapply.
    pub fn schedule_membership(&mut self, schedule: MembershipSchedule) {
        self.membership = schedule;
        self.membership_cursor = 0;
    }

    /// Every membership change applied so far (scheduled and autoscaled), in
    /// application order.
    pub fn membership_log(&self) -> &[AppliedMembership] {
        &self.membership_log
    }

    /// Every completed drain (slot retired), with its drain-to-net spill
    /// accounting.
    pub fn drain_records(&self) -> &[DrainRecord] {
        &self.drain_records
    }

    /// Number of slots currently accepting new work.
    pub fn num_active_instances(&self) -> usize {
        self.slot_states
            .iter()
            .filter(|state| state.is_active())
            .count()
    }

    /// Maximum input length of the deployment (all instances are identical).
    pub fn max_input_length(&self) -> u64 {
        self.instances
            .first()
            .map(EngineInstance::max_input_length)
            .unwrap_or(0)
    }

    /// Whether every request of a workload with the given maximum length can be served.
    pub fn can_serve(&self, max_request_tokens: u64) -> bool {
        max_request_tokens <= self.max_input_length()
    }

    /// Replays a workload trace and returns the per-request records.
    ///
    /// `offered_qps` is recorded in the report for plotting; the arrival times
    /// themselves already encode the offered load.
    ///
    /// Replicated deployments are simulated with one OS thread per instance (see the
    /// module docs); the report is identical to [`Self::run_sequential`].
    pub fn run(
        &mut self,
        arrivals: &[ArrivalPattern],
        offered_qps: f64,
    ) -> Result<RunReport, RunError> {
        let (max_request_tokens, sorted) = Self::scan_trace(arrivals);
        self.ensure_feasible(max_request_tokens)?;
        Ok(self.run_vec(arrivals, sorted, offered_qps, true))
    }

    /// The single-threaded reference implementation of [`Self::run`]: one global event
    /// loop interleaving all instances, exactly as the seed simulator ran.  Kept
    /// public so tests (and sceptical experimenters) can verify that the parallel path
    /// is behaviour-preserving.
    pub fn run_sequential(
        &mut self,
        arrivals: &[ArrivalPattern],
        offered_qps: f64,
    ) -> Result<RunReport, RunError> {
        let (max_request_tokens, sorted) = Self::scan_trace(arrivals);
        self.ensure_feasible(max_request_tokens)?;
        Ok(self.run_vec(arrivals, sorted, offered_qps, false))
    }

    /// [`Self::run`] over a [`SortedTrace`]: the trace carries its sortedness and
    /// maximum request length as construction-time properties, so replay starts
    /// with **zero** O(n) pre-work — no sortedness re-scan, no max-tokens pass.
    pub fn run_sorted(
        &mut self,
        trace: &SortedTrace,
        offered_qps: f64,
    ) -> Result<RunReport, RunError> {
        self.ensure_feasible(trace.max_request_tokens())?;
        Ok(self.run_vec(trace.arrivals(), true, offered_qps, true))
    }

    /// The single-threaded reference flavour of [`Self::run_sorted`].
    pub fn run_sorted_sequential(
        &mut self,
        trace: &SortedTrace,
        offered_qps: f64,
    ) -> Result<RunReport, RunError> {
        self.ensure_feasible(trace.max_request_tokens())?;
        Ok(self.run_vec(trace.arrivals(), true, offered_qps, false))
    }

    /// Replays an [`ArrivalStream`] without ever materialising the trace: arrivals
    /// are pulled incrementally, buffered one epoch at a time, routed per epoch and
    /// simulated to the epoch boundary, so peak arrival memory is O(largest epoch)
    /// regardless of trace length — the million-request replay path (see the module
    /// docs, "Streaming replay").
    ///
    /// Deployments with propagation epochs enabled replay **byte-identically** to
    /// [`Self::run`] on the materialised trace (same boundaries, same per-epoch
    /// routing).  Without them the stream is still chunked (routing-snapshot cadence
    /// follows the chunks), and parallel replay stays byte-identical to
    /// [`Self::run_stream_sequential`] under every policy.
    ///
    /// # Errors
    ///
    /// Feasibility is checked as arrivals surface (a stream cannot be pre-scanned):
    /// an oversized request aborts the replay mid-run with
    /// [`RunError::WorkloadInfeasible`], with earlier epochs already simulated and
    /// cluster state (caches, router pins, shared tier) advanced.  Callers that need
    /// all-or-nothing semantics should validate the generator's maximum request
    /// length up front, as the materialised entry points do.
    ///
    /// # Panics
    ///
    /// Panics if the stream violates its contract by yielding arrivals out of event
    /// order.
    pub fn run_stream<S: ArrivalStream + ?Sized>(
        &mut self,
        stream: &mut S,
        offered_qps: f64,
    ) -> Result<RunReport, RunError> {
        self.run_stream_core(stream, offered_qps, true)
    }

    /// The single-threaded reference flavour of [`Self::run_stream`].
    pub fn run_stream_sequential<S: ArrivalStream + ?Sized>(
        &mut self,
        stream: &mut S,
        offered_qps: f64,
    ) -> Result<RunReport, RunError> {
        self.run_stream_core(stream, offered_qps, false)
    }

    /// The shared materialised-trace replay: epoch-sharing deployments stream the
    /// slice (identical boundaries and routing cadence to [`Self::run_stream`]);
    /// everything else takes the historical single-pass window.
    fn run_vec(
        &mut self,
        arrivals: &[ArrivalPattern],
        sorted: bool,
        offered_qps: f64,
        parallel: bool,
    ) -> RunReport {
        if self.uses_propagation_epochs() || self.elastic_replay() || self.fleet_disaggregated() {
            let mut stream = if sorted {
                SliceArrivalStream::from_sorted(arrivals)
            } else {
                SliceArrivalStream::sorting(arrivals)
            };
            return self
                .run_stream_core(&mut stream, offered_qps, parallel)
                .expect("feasibility is checked before streaming a slice");
        }
        self.install_net_snapshots();

        // Route every arrival up front against the window-start snapshot (see the
        // module docs) in `(arrival time, index)` order — exactly the order the
        // sequential event loop pops arrival events.
        let mut routed = self.route_window(arrivals, sorted);

        let records = if parallel {
            // Each instance's partition holds owned `(request id, reason,
            // routing-time hashes, user, tokens, arrival)` entries, sorted by
            // `(arrival time, id)`.
            let mut partitions: Vec<Vec<PartitionEntry>> =
                (0..self.instances.len()).map(|_| Vec::new()).collect();
            let order = routed.order.take();
            let mut push = |idx: usize| {
                let decision = routed.decisions[idx];
                let arrival = &arrivals[idx];
                partitions[decision.instance].push(PartitionEntry {
                    request_id: idx as u64,
                    reason: decision.reason,
                    hashes: routed.take_hashes(idx),
                    user_id: arrival.template.user_id,
                    tokens: Arc::clone(&arrival.template.tokens),
                    decode_tokens: arrival.template.decode_tokens,
                    arrival: arrival.arrival,
                });
            };
            match &order {
                None => (0..arrivals.len()).for_each(&mut push),
                Some(order) => order.iter().copied().for_each(&mut push),
            }

            let mut per_instance: Vec<Vec<RequestRecord>> =
                Vec::with_capacity(self.instances.len());
            if self.instances.len() == 1 {
                per_instance.push(Self::simulate_instance(
                    &mut self.instances[0],
                    &partitions[0],
                ));
            } else {
                per_instance.resize_with(self.instances.len(), Vec::new);
                if self.worker_pool.is_none() {
                    self.worker_pool = Some(WorkerPool::new());
                }
                let pool = self.worker_pool.as_ref().expect("just ensured above");
                let jobs: Vec<ScopedJob> = self
                    .instances
                    .iter_mut()
                    .zip(&partitions)
                    .zip(&mut per_instance)
                    .map(|((instance, partition), records)| {
                        Box::new(move || {
                            *records = Self::simulate_instance(instance, partition);
                        }) as ScopedJob
                    })
                    .collect();
                pool.run_batch(jobs);
            }
            per_instance.into_iter().flatten().collect()
        } else {
            // The identical routing pass feeds one global event loop: decisions are
            // a pure function of the window-start snapshot, so pre-routing changes
            // nothing relative to routing at event-pop time.
            let mut events: EventQueue<Event> = EventQueue::new();
            for (idx, arrival) in arrivals.iter().enumerate() {
                events.push(arrival.arrival, Event::Arrival(idx));
            }
            let mut records: Vec<RequestRecord> = Vec::with_capacity(arrivals.len());
            self.run_global_events_until(
                arrivals,
                &routed.decisions,
                &mut routed.hashes,
                &mut events,
                &mut records,
                None,
            );
            records
        };

        self.merge_net_snapshots();
        self.finish_report(records, offered_qps)
    }

    /// The streaming replay loop shared by both flavours (see the module docs,
    /// "Streaming replay"): pull one epoch of arrivals, route it, simulate strictly
    /// to the epoch boundary, repeat.  Epoch-sharing deployments additionally
    /// install/merge tier snapshots at every boundary; everything else installs
    /// once up front and merges once at the end (chunk boundaries are then only a
    /// routing-snapshot and barrier cadence).
    fn run_stream_core<S: ArrivalStream + ?Sized>(
        &mut self,
        stream: &mut S,
        offered_qps: f64,
        parallel: bool,
    ) -> Result<RunReport, RunError> {
        let num_instances = self.instances.len();
        let epoch_sharing = self.uses_propagation_epochs();
        let mut clock = self.stream_clock();
        if epoch_sharing {
            // Spills of earlier windows have long since crossed the fabric: only
            // this window's spills are subject to the propagation delay (and
            // counted as mid-window propagated when reloaded).
            if let Some(pool) = &mut self.net_pool {
                pool.settle();
            }
        } else {
            self.install_net_snapshots();
        }

        let mut scratch = RoutingScratch::new();
        let mut epoch_buf: Vec<StreamedArrival> = Vec::new();

        // Parallel flavour state: per-instance queues/partitions/records.
        let mut queues: Vec<EventQueue<InstanceEvent>> =
            (0..num_instances).map(|_| EventQueue::new()).collect();
        let mut partitions: Vec<Vec<PartitionEntry>> =
            (0..num_instances).map(|_| Vec::new()).collect();
        let mut per_instance: Vec<Vec<RequestRecord>> =
            (0..num_instances).map(|_| Vec::new()).collect();
        // Sequential flavour state: one global queue and record list.
        let mut events: EventQueue<Event> = EventQueue::new();
        let mut records: Vec<RequestRecord> = Vec::new();
        if !parallel {
            if let Some(hint) = stream.len_hint() {
                records.reserve(hint as usize);
            }
        }

        let max_input_length = self.max_input_length();
        let mut lookahead = stream.next_arrival();
        let mut last_arrival_time = SimTime::ZERO;
        let mut epoch_start = SimTime::ZERO;
        // The probe-reuse guard: `(visible_at, generation, meta_generation)` of the
        // previous epoch's installs.  If the shared pool's content and publication
        // metadata are untouched since, and no publish timestamp lies in
        // `(previous visible_at, this visible_at]`, then every instance's visible
        // entry set *and* propagation flags are identical to the previous epoch —
        // so the installs may keep probe memoisation warm.
        let mut last_install: Option<(SimTime, u64, u64)> = None;
        loop {
            let boundary = clock.boundary();
            // Membership changes (scheduled and autoscaled) apply at the epoch
            // boundary — the one barrier where no instance is mid-simulation —
            // so they are a pure function of the trace and the completed epochs.
            if self.apply_membership_at(epoch_start, epoch_sharing) {
                // A join may have grown the fleet: give new slots replay state.
                while queues.len() < self.instances.len() {
                    queues.push(EventQueue::new());
                    partitions.push(Vec::new());
                    per_instance.push(Vec::new());
                }
            }
            epoch_buf.clear();
            while let Some(streamed) = lookahead.take() {
                if streamed.arrival.arrival >= boundary {
                    lookahead = Some(streamed);
                    break;
                }
                assert!(
                    streamed.arrival.arrival >= last_arrival_time,
                    "ArrivalStream contract violated: arrival of request {} at {} precedes {}",
                    streamed.id,
                    streamed.arrival.arrival,
                    last_arrival_time
                );
                last_arrival_time = streamed.arrival.arrival;
                let num_tokens = streamed.arrival.template.num_tokens();
                if num_tokens > max_input_length {
                    return Err(RunError::WorkloadInfeasible {
                        max_request_tokens: num_tokens,
                        max_input_length,
                    });
                }
                epoch_buf.push(streamed);
                lookahead = stream.next_arrival();
            }
            // The stream is exhausted: this is the final epoch, which drains to
            // completion instead of pausing at the boundary (the tail of a window
            // past its last epoch cut behaves like a delay-zero window).  A
            // disaggregated fleet keeps cutting boundaries instead — handoffs
            // emitted this epoch still have to cross the fabric and be decoded,
            // and both only happen at boundaries — and leaves the loop below
            // once the whole handoff plane has drained.
            let stream_done = lookahead.is_none();
            let disaggregated = self.fleet_disaggregated();
            let final_epoch = stream_done && !disaggregated;
            let sim_boundary = (!final_epoch).then_some(boundary);

            if epoch_sharing {
                let content_unchanged = match (&self.net_pool, last_install) {
                    (Some(pool), Some((previous_at, generation, meta))) => {
                        pool.generation() == generation
                            && pool.meta_generation() == meta
                            && !pool.published_in(previous_at, epoch_start)
                    }
                    _ => false,
                };
                if let Some(pool) = &self.net_pool {
                    last_install = Some((epoch_start, pool.generation(), pool.meta_generation()));
                }
                self.install_net_snapshots_visible(epoch_start, content_unchanged);
            }
            self.route_stream_epoch(&epoch_buf, &mut scratch);

            if parallel {
                // Partitions are refilled per epoch (every prior arrival event was
                // consumed before its boundary); Complete/Admit events crossing the
                // boundary carry no partition positions, so clearing is safe.
                for partition in &mut partitions {
                    partition.clear();
                }
                for (pos, streamed) in epoch_buf.iter().enumerate() {
                    let decision = scratch.decisions[pos];
                    let partition = &mut partitions[decision.instance];
                    partition.push(PartitionEntry {
                        request_id: streamed.id,
                        reason: decision.reason,
                        hashes: scratch.take_hashes(pos),
                        user_id: streamed.arrival.template.user_id,
                        tokens: Arc::clone(&streamed.arrival.template.tokens),
                        decode_tokens: streamed.arrival.template.decode_tokens,
                        arrival: streamed.arrival.arrival,
                    });
                    queues[decision.instance].push(
                        streamed.arrival.arrival,
                        InstanceEvent::Arrival(partition.len() - 1),
                    );
                }
                if self.instances.len() == 1 {
                    Self::simulate_instance_until(
                        &mut self.instances[0],
                        &partitions[0],
                        &mut queues[0],
                        &mut per_instance[0],
                        sim_boundary,
                    );
                } else {
                    if self.worker_pool.is_none() {
                        self.worker_pool = Some(WorkerPool::new());
                    }
                    let pool = self.worker_pool.as_ref().expect("just ensured above");
                    let jobs: Vec<ScopedJob> = self
                        .instances
                        .iter_mut()
                        .zip(&partitions)
                        .zip(&mut queues)
                        .zip(&mut per_instance)
                        .map(|(((instance, partition), queue), instance_records)| {
                            Box::new(move || {
                                Self::simulate_instance_until(
                                    instance,
                                    partition,
                                    queue,
                                    instance_records,
                                    sim_boundary,
                                );
                            }) as ScopedJob
                        })
                        .collect();
                    pool.run_batch(jobs);
                }
            } else {
                for (pos, streamed) in epoch_buf.iter().enumerate() {
                    events.push(streamed.arrival.arrival, Event::Arrival(pos));
                }
                self.run_stream_events_until(
                    &epoch_buf,
                    &mut scratch,
                    &mut events,
                    &mut records,
                    sim_boundary,
                );
            }

            // The handoff plane: collect every KV handoff the epoch's prefill
            // passes emitted (slot-index order, on this thread — a barrier
            // action exactly like the snapshot merge below) and admit the ones
            // whose fabric transfer has completed onto decode-capable slots.
            if disaggregated {
                self.collect_handoffs();
                self.dispatch_ready_handoffs(boundary, parallel, &mut queues, &mut events);
            }
            // Draining slots that reached the boundary idle retire now: the
            // drain-to-net spill publishes into the slot's installed snapshot
            // before the merge below folds it into the shared pool.
            self.retire_idle_drains(boundary, epoch_sharing);
            if epoch_sharing {
                self.merge_net_snapshots();
            }
            if self.config.track_window_metrics {
                self.sample_window(boundary);
            }
            if final_epoch {
                break;
            }
            // Disaggregated drain-out: the stream is done and nothing is left
            // anywhere — no in-flight handoff, no queued event, no instance
            // holding work — so later boundaries would be empty spins.
            if stream_done
                && self.handoff_ledger.is_empty()
                && queues.iter().all(EventQueue::is_empty)
                && events.is_empty()
                && self
                    .instances
                    .iter()
                    .all(|i| i.queue_len() == 0 && i.running_len() == 0)
            {
                break;
            }
            clock.advance(epoch_buf.len() as u64);
            epoch_start = boundary;
        }
        if !epoch_sharing {
            self.merge_net_snapshots();
        }
        debug_assert!(queues.iter().all(EventQueue::is_empty));
        debug_assert!(events.is_empty());

        let records = if parallel {
            per_instance.into_iter().flatten().collect()
        } else {
            records
        };
        Ok(self.finish_report(records, offered_qps))
    }

    /// The epoch clock of one streamed replay: epoch-sharing deployments cut at the
    /// configured propagation delay (adapted per [`EpochLengthPolicy`]); everything
    /// else chunks purely for bounded arrival memory, self-pacing towards
    /// [`STREAM_CHUNK_TARGET_ARRIVALS`] arrivals per chunk unless the configuration
    /// asks for specific adaptive bounds.
    fn stream_clock(&self) -> EpochClock {
        // A disaggregated fleet's KV handoffs ride the same inter-node fabric as
        // published spills, so the propagation delay sets the boundary cadence
        // even when the shared KV tier itself is disabled — otherwise the
        // arrival-memory chunking below would stretch epochs far past the
        // fabric's actual surfacing latency.
        if self.uses_propagation_epochs()
            || (self.fleet_disaggregated() && self.config.net_propagation_ms > 0)
        {
            return EpochClock::new(self.config.net_propagation_ms, self.config.epoch_length);
        }
        let policy = match self.config.epoch_length {
            adaptive @ EpochLengthPolicy::Adaptive { .. } => adaptive,
            EpochLengthPolicy::Fixed => EpochLengthPolicy::Adaptive {
                target_arrivals: STREAM_CHUNK_TARGET_ARRIVALS,
                min_ms: 1,
                max_ms: STREAM_CHUNK_MAX_MS,
            },
        };
        EpochClock::new(STREAM_CHUNK_BASE_MS, policy)
    }

    /// Routes one epoch's batch into `scratch` (a decision per batch position, plus
    /// the hash chains computed for probing): tries the stamped arithmetic fast
    /// path first, then falls back to the snapshot pass — reusing the scratch's
    /// load/probe buffers so steady-state routing allocates nothing per epoch.
    fn route_stream_epoch(&mut self, batch: &[StreamedArrival], scratch: &mut RoutingScratch) {
        let num_instances = self.instances.len();
        let needs_probe = self.router.needs_prefix_probe();
        let block_size = self.config.block_size;
        scratch.decisions.clear();
        scratch.decisions.resize(
            batch.len(),
            RoutingDecision {
                instance: 0,
                reason: RoutingReason::Direct,
            },
        );
        scratch.hashes.clear();
        scratch
            .hashes
            .resize(if needs_probe { batch.len() } else { 0 }, None);
        if batch.is_empty() {
            return;
        }
        if self
            .router
            .route_stamped_batch(batch, num_instances, &mut scratch.decisions)
        {
            return;
        }

        let mut snapshot = self.capture_snapshot(
            std::mem::take(&mut scratch.loads),
            std::mem::take(&mut scratch.probes),
        );
        // A residency-free snapshot answers depth 0 to every probe, so hashing the
        // arrivals would be pure cost: skip it and let the instance compute the
        // (identical, content-determined) chain at enqueue — which on the parallel
        // path also moves that work off the sequential routing pass.
        let hashing = needs_probe && snapshot.has_prefix_residency();
        for (pos, streamed) in batch.iter().enumerate() {
            let arrival = &streamed.arrival;
            let hashes =
                hashing.then(|| Arc::new(hash_token_blocks(&arrival.template.tokens, block_size)));
            let query = RouteQuery {
                user_id: arrival.template.user_id,
                num_tokens: arrival.template.num_tokens(),
                hashes: hashes.as_deref().map_or(&[], Vec::as_slice),
            };
            let decision = self.router.route(&query, &snapshot);
            assert!(
                decision.instance < num_instances,
                "routing policy chose instance {} of {num_instances}",
                decision.instance
            );
            snapshot.note_routed(decision.instance, arrival.template.num_tokens());
            scratch.decisions[pos] = decision;
            if let Some(hashes) = hashes {
                scratch.hashes[pos] = Some(hashes);
            }
        }
        (scratch.loads, scratch.probes) = snapshot.into_buffers();
    }

    /// Runs one routing pass over a batch without simulating it — the benchmark
    /// hook behind the `routing_pass` µs/arrival metric.  Reuses `scratch` exactly
    /// as replay does, so the measurement sees steady-state allocation behaviour.
    /// Note that the router's persistent state (sticky pins, rank history) advances
    /// with every call, exactly as it would during replay.
    pub fn route_preview(&mut self, batch: &[StreamedArrival], scratch: &mut RoutingScratch) {
        self.route_stream_epoch(batch, scratch);
    }

    /// Captures the [`RouterSnapshot`] of the *current* instance state, reusing the
    /// given load/probe buffers (pass empty vectors when there is nothing to
    /// recycle).
    fn capture_snapshot(
        &self,
        mut loads: Vec<InstanceLoad>,
        mut probes: Vec<PrefixProbe>,
    ) -> RouterSnapshot {
        let block_size = self.config.block_size;
        loads.clear();
        loads.extend(self.instances.iter().map(EngineInstance::router_load));
        probes.clear();
        if self.router.needs_prefix_probe() {
            probes.extend(self.instances.iter().map(EngineInstance::prefix_probe));
        }
        let (cpu_hit_discount, net_hit_discount) = self
            .instances
            .first()
            .map(|i| (i.cpu_hit_discount(), i.net_hit_discount()))
            .unwrap_or((0.0, 0.0));
        let pool_capacity_blocks = self
            .instances
            .first()
            .map(|i| i.kv_pool_tokens() / block_size as u64)
            .unwrap_or(0);
        RouterSnapshot::new(
            loads,
            probes,
            block_size,
            pool_capacity_blocks,
            cpu_hit_discount,
            net_hit_discount,
        )
        .with_routable_slots(self.prefill_capable_slots())
    }

    /// The sequential streaming event loop of one epoch: like
    /// [`Self::run_global_events_until`], but arrival events index the epoch's
    /// batch (ids come from the stream) and decisions/hashes live in the scratch.
    fn run_stream_events_until(
        &mut self,
        batch: &[StreamedArrival],
        scratch: &mut RoutingScratch,
        events: &mut EventQueue<Event>,
        records: &mut Vec<RequestRecord>,
        boundary: Option<SimTime>,
    ) {
        while let Some(at) = events.peek_time() {
            if boundary.is_some_and(|b| at >= b) {
                break;
            }
            let scheduled = events.pop().expect("peeked event");
            let now = scheduled.at;
            match scheduled.event {
                Event::Arrival(pos) => {
                    let streamed = &batch[pos];
                    let decision = scratch.decisions[pos];
                    let instance_idx = decision.instance;
                    let request = PrefillRequest {
                        id: streamed.id,
                        user_id: streamed.arrival.template.user_id,
                        tokens: Arc::clone(&streamed.arrival.template.tokens),
                        decode_tokens: streamed.arrival.template.decode_tokens,
                        allowed_outputs: Vec::new(),
                        arrival: now,
                        routing: decision.reason,
                    };
                    self.instances[instance_idx].enqueue_with_hashes(
                        request,
                        scratch.take_hashes(pos),
                        now,
                    );
                    Self::admit(&mut self.instances[instance_idx], instance_idx, now, events);
                }
                Event::Admit(instance_idx) => {
                    Self::admit(&mut self.instances[instance_idx], instance_idx, now, events);
                }
                Event::Complete {
                    instance,
                    request_id,
                } => {
                    // `None` = a prefill-role first token whose record surfaces
                    // on the decode side after the KV handoff.
                    if let Some(record) = self.instances[instance].complete(request_id, now) {
                        records.push(record);
                    }
                    Self::admit(&mut self.instances[instance], instance, now, events);
                }
            }
        }
    }

    /// Runs the global (all-instance) event loop strictly up to `boundary` (forever
    /// when `None`) — the sequential analogue of [`Self::simulate_instance_until`]:
    /// events scheduled at or past the boundary stay queued for the next
    /// propagation epoch.
    fn run_global_events_until(
        &mut self,
        arrivals: &[ArrivalPattern],
        decisions: &[RoutingDecision],
        routed_hashes: &mut [Option<Arc<Vec<kvcache::TokenBlockHash>>>],
        events: &mut EventQueue<Event>,
        records: &mut Vec<RequestRecord>,
        boundary: Option<SimTime>,
    ) {
        while let Some(at) = events.peek_time() {
            if boundary.is_some_and(|b| at >= b) {
                break;
            }
            let scheduled = events.pop().expect("peeked event");
            let now = scheduled.at;
            match scheduled.event {
                Event::Arrival(idx) => {
                    let arrival = &arrivals[idx];
                    let decision = decisions[idx];
                    let instance_idx = decision.instance;
                    let request = PrefillRequest {
                        id: idx as u64,
                        user_id: arrival.template.user_id,
                        tokens: Arc::clone(&arrival.template.tokens),
                        decode_tokens: arrival.template.decode_tokens,
                        allowed_outputs: Vec::new(),
                        arrival: now,
                        routing: decision.reason,
                    };
                    self.instances[instance_idx].enqueue_with_hashes(
                        request,
                        routed_hashes.get_mut(idx).and_then(Option::take),
                        now,
                    );
                    Self::admit(&mut self.instances[instance_idx], instance_idx, now, events);
                }
                Event::Admit(instance_idx) => {
                    Self::admit(&mut self.instances[instance_idx], instance_idx, now, events);
                }
                Event::Complete {
                    instance,
                    request_id,
                } => {
                    if let Some(record) = self.instances[instance].complete(request_id, now) {
                        records.push(record);
                    }
                    Self::admit(&mut self.instances[instance], instance, now, events);
                }
            }
        }
    }

    /// Routes one replay window's arrivals (see the module docs): captures the
    /// deterministic [`RouterSnapshot`] of the window-start state and runs the
    /// configured policy over every arrival in `(arrival time, trace index)` order,
    /// folding each decision back into the snapshot's load model so balancing works
    /// within the window.
    ///
    /// State-independent policies can skip the pass entirely: on an arrival-sorted
    /// trace stamped with [`workload::StickySeq`], the sticky policy partitions
    /// arithmetically via [`RoutingPolicy::route_sorted_trace`].
    ///
    /// `sorted` is carried in from the caller's single feasibility scan
    /// ([`Self::scan_trace`], or the construction-time property of a
    /// [`SortedTrace`]) — the window pass no longer re-derives it per call.
    fn route_window(&mut self, arrivals: &[ArrivalPattern], sorted: bool) -> RoutedWindow {
        let num_instances = self.instances.len();
        if sorted {
            if let Some(decisions) = self.router.route_sorted_trace(arrivals, num_instances) {
                debug_assert_eq!(decisions.len(), arrivals.len());
                return RoutedWindow {
                    decisions,
                    order: None,
                    hashes: Vec::new(),
                };
            }
        }
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        if !sorted {
            order.sort_by_key(|&idx| (arrivals[idx].arrival, idx));
        }

        let (mut decisions, mut routed_hashes) = self.routing_buffers(arrivals.len());
        self.route_ordered(arrivals, &order, &mut decisions, &mut routed_hashes);
        RoutedWindow {
            decisions,
            order: Some(order),
            hashes: routed_hashes,
        }
    }

    /// Allocates the per-window routing buffers [`Self::route_ordered`] fills in: a
    /// decision per trace index (defaulted to `Direct`, overwritten by the pass) and
    /// — only when the policy probes — a hash-chain slot per trace index.
    #[allow(clippy::type_complexity)]
    fn routing_buffers(
        &self,
        num_arrivals: usize,
    ) -> (
        Vec<RoutingDecision>,
        Vec<Option<Arc<Vec<kvcache::TokenBlockHash>>>>,
    ) {
        let decisions = vec![
            RoutingDecision {
                instance: 0,
                reason: RoutingReason::Direct,
            };
            num_arrivals
        ];
        let hashes = vec![
            None;
            if self.router.needs_prefix_probe() {
                num_arrivals
            } else {
                0
            }
        ];
        (decisions, hashes)
    }

    /// The core routing pass shared by the whole-window slow path and the per-epoch
    /// path: captures a [`RouterSnapshot`] of the *current* instance state and routes
    /// the arrivals listed in `order` (which must already be sorted by
    /// `(arrival time, trace index)`), writing each decision — and the hash chain
    /// computed for probing, if any — at its trace index.
    fn route_ordered(
        &mut self,
        arrivals: &[ArrivalPattern],
        order: &[usize],
        decisions: &mut [RoutingDecision],
        routed_hashes: &mut [Option<Arc<Vec<kvcache::TokenBlockHash>>>],
    ) {
        let num_instances = self.instances.len();
        let needs_probe = self.router.needs_prefix_probe();
        let block_size = self.config.block_size;
        let mut snapshot = self.capture_snapshot(Vec::new(), Vec::new());

        // Same cold-fleet fast path as `route_stream_epoch`: no resident block
        // anywhere means every chain walk is 0, so the chains need not exist.
        let hashing = needs_probe && snapshot.has_prefix_residency();
        for &idx in order {
            let arrival = &arrivals[idx];
            let hashes =
                hashing.then(|| Arc::new(hash_token_blocks(&arrival.template.tokens, block_size)));
            let query = RouteQuery {
                user_id: arrival.template.user_id,
                num_tokens: arrival.template.num_tokens(),
                hashes: hashes.as_deref().map_or(&[], Vec::as_slice),
            };
            let decision = self.router.route(&query, &snapshot);
            assert!(
                decision.instance < num_instances,
                "routing policy chose instance {} of {num_instances}",
                decision.instance
            );
            snapshot.note_routed(decision.instance, arrival.template.num_tokens());
            decisions[idx] = decision;
            if let Some(hashes) = hashes {
                routed_hashes[idx] = Some(hashes);
            }
        }
    }

    /// Whether replay windows are subdivided into propagation epochs.  The delay is
    /// a property of the shared network tier, so with the tier disabled the knob is
    /// inert — there is nothing to propagate, and taking the epoch path anyway
    /// would change the routing-snapshot cadence of the tierless baseline an
    /// ablation compares against.
    fn uses_propagation_epochs(&self) -> bool {
        self.config.net_propagation_ms > 0 && self.net_pool.is_some()
    }

    /// Whether the next replay must take the epoch loop even without propagation
    /// epochs: pending membership events, a configured autoscaler, or a fleet
    /// that is not uniformly active (draining slots need epoch boundaries to
    /// retire) all require boundaries to apply changes at.
    fn elastic_replay(&self) -> bool {
        self.membership_cursor < self.membership.len()
            || self.config.autoscaler.is_some()
            || self.slot_states.iter().any(|state| !state.is_active())
    }

    /// Indices of the routable slots, ascending.
    fn active_slots(&self) -> Vec<usize> {
        self.slot_states
            .iter()
            .enumerate()
            .filter_map(|(slot, state)| state.is_active().then_some(slot))
            .collect()
    }

    /// Indices of the active slots whose role runs the prefill phase, ascending —
    /// the only slots arrivals may route to.  Equal to [`Self::active_slots`] on a
    /// uniformly colocated fleet, so role-free deployments replay byte for byte.
    fn prefill_capable_slots(&self) -> Vec<usize> {
        self.slot_states
            .iter()
            .enumerate()
            .filter_map(|(slot, state)| {
                (state.is_active() && self.instances[slot].role().can_prefill()).then_some(slot)
            })
            .collect()
    }

    /// Whether any live (non-retired) slot carries a dedicated phase role.  Such
    /// fleets always replay through the epoch loop: the KV handoff plane needs
    /// boundaries to surface transfers at, even with propagation epochs disabled.
    fn fleet_disaggregated(&self) -> bool {
        self.slot_states.iter().enumerate().any(|(slot, state)| {
            !matches!(state, SlotState::Retired)
                && self.instances[slot].role() != InstanceRole::Colocated
        })
    }

    /// Drains every instance's handoff outbox (slot-index order, so the ledger's
    /// cumulative totals accrue deterministically) into the in-flight ledger.
    fn collect_handoffs(&mut self) {
        for slot in 0..self.instances.len() {
            for handoff in self.instances[slot].take_handoffs() {
                self.handoff_ledger.push(HandoffRecord {
                    request_id: handoff.request.id,
                    from_slot: handoff.prefill_slot,
                    blocks: handoff.blocks,
                    bytes: handoff.bytes,
                    emitted_at: handoff.first_token,
                    ready_at: handoff.ready_at,
                });
                self.handoff_payloads.insert(handoff.request.id, handoff);
            }
        }
    }

    /// Admits every handoff whose fabric transfer completed by `boundary` onto the
    /// least-loaded active decode-capable slot (modelled outstanding tokens plus
    /// what this boundary already assigned, ties by slot index).  Runs at the
    /// barrier on the calling thread, so parallel and sequential replay assign —
    /// and hence replay — identically.  Admissions the slot cannot hold yet are
    /// re-enqueued for the next boundary; chains larger than an empty pool are
    /// dropped (counted by the decode instance as rejected).
    fn dispatch_ready_handoffs(
        &mut self,
        boundary: SimTime,
        parallel: bool,
        queues: &mut [EventQueue<InstanceEvent>],
        events: &mut EventQueue<Event>,
    ) {
        let ready = self.handoff_ledger.take_ready(boundary);
        if ready.is_empty() {
            return;
        }
        let mut assigned: Vec<u64> = vec![0; self.instances.len()];
        for record in ready {
            let payload = self
                .handoff_payloads
                .remove(&record.request_id)
                .expect("every in-flight handoff keeps its payload");
            let Some(target) = self.least_loaded_decode_slot(&assigned) else {
                // No decode-capable slot is active right now (mid-drain churn):
                // keep the handoff in flight and retry at the next boundary.
                self.handoff_payloads.insert(record.request_id, payload);
                self.handoff_ledger.requeue(record);
                continue;
            };
            let tokens = payload.request.num_tokens();
            match self.instances[target].admit_handoff(payload, boundary) {
                HandoffAdmission::Admitted(started) => {
                    assigned[target] += tokens;
                    if parallel {
                        queues[target].push(
                            started.completion,
                            InstanceEvent::Complete(started.request_id),
                        );
                    } else {
                        events.push(
                            started.completion,
                            Event::Complete {
                                instance: target,
                                request_id: started.request_id,
                            },
                        );
                    }
                }
                HandoffAdmission::Retry(payload) => {
                    self.handoff_payloads.insert(record.request_id, payload);
                    self.handoff_ledger.requeue(record);
                }
                HandoffAdmission::Rejected => {}
            }
        }
    }

    /// The active decode-capable slot with the least modelled load, or `None` when
    /// no such slot is active.  `assigned` carries the tokens this boundary's
    /// earlier dispatches already placed, so one boundary spreads a burst of
    /// ready handoffs instead of stacking them all on one slot.
    fn least_loaded_decode_slot(&self, assigned: &[u64]) -> Option<usize> {
        self.slot_states
            .iter()
            .enumerate()
            .filter(|&(slot, state)| state.is_active() && self.instances[slot].role().can_decode())
            .min_by_key(|&(slot, _)| {
                (
                    self.instances[slot].router_load().outstanding_tokens + assigned[slot],
                    slot,
                )
            })
            .map(|(slot, _)| slot)
    }

    /// Samples the fleet at one epoch boundary into the time-series export
    /// ([`EngineConfig::track_window_metrics`]): per-slot gauges for every
    /// non-retired slot plus fleet-cumulative tier and handoff counters.  Pure
    /// observation at the barrier — the replay itself is untouched.
    fn sample_window(&mut self, boundary: SimTime) {
        let offload = self.aggregate_offload_stats();
        let slots = self
            .slot_states
            .iter()
            .enumerate()
            .filter(|(_, state)| !matches!(state, SlotState::Retired))
            .map(|(slot, _)| {
                let instance = &self.instances[slot];
                let load = instance.router_load();
                SlotWindow {
                    slot,
                    role: instance.role(),
                    queued_requests: load.queued_requests,
                    outstanding_tokens: load.outstanding_tokens,
                    running_requests: instance.running_len() as u64,
                    gpu_cached_blocks: instance.gpu_cached_blocks(),
                    cpu_resident_blocks: instance.cpu_resident_blocks(),
                }
            })
            .collect();
        self.window_metrics.push(WindowMetrics {
            window: self.window_metrics.len() as u64,
            boundary,
            slots,
            net_resident_blocks: self.net_pool.as_ref().map_or(0, NetKvPool::resident_blocks),
            offloaded_blocks: offload.offloaded_blocks,
            reloaded_blocks: offload.reloaded_blocks,
            net_reloaded_blocks: offload.net_reloaded_blocks,
            handoff_records: offload.handoff_records,
            handoff_bytes: offload.handoff_bytes,
        });
    }

    /// Applies every scheduled membership event due at `epoch_start`, then —
    /// once at least one epoch has completed — gives the autoscaler one
    /// decision, subject to its cooldown.  Returns `true` when the fleet
    /// changed, so the caller can grow its per-slot replay state.
    fn apply_membership_at(&mut self, epoch_start: SimTime, epoch_sharing: bool) -> bool {
        let mut changed = false;
        while let Some(&event) = self.membership.events().get(self.membership_cursor) {
            if event.at > epoch_start {
                break;
            }
            self.membership_cursor += 1;
            if self.apply_change(event.change, epoch_start, false, epoch_sharing) {
                changed = true;
                self.reset_autoscaler_cooldown();
            }
        }
        if epoch_start > SimTime::ZERO {
            if self.autoscaler_cooldown > 0 {
                self.autoscaler_cooldown -= 1;
            } else if let Some(change) = self.autoscaler_decision() {
                if self.apply_change(change, epoch_start, true, epoch_sharing) {
                    changed = true;
                    self.reset_autoscaler_cooldown();
                }
            }
        }
        if changed {
            let routable = self.prefill_capable_slots();
            self.router.note_membership_change(&routable);
        }
        changed
    }

    fn reset_autoscaler_cooldown(&mut self) {
        self.autoscaler_cooldown = self
            .config
            .autoscaler
            .map_or(0, |policy| policy.cooldown_epochs);
    }

    /// The autoscaler's decision against completed-epoch state: the mean
    /// outstanding tokens per routable instance, compared to the thresholds
    /// under the min/max fleet clamps (see [`crate::AutoscalerPolicy`]).
    fn autoscaler_decision(&self) -> Option<MembershipChange> {
        let policy = self.config.autoscaler?;
        let active = self.active_slots();
        let mean_outstanding = active
            .iter()
            .map(|&slot| self.instances[slot].router_load().outstanding_tokens)
            .sum::<u64>()
            / active.len() as u64;
        if mean_outstanding > policy.scale_up_outstanding_tokens
            && active.len() < policy.max_instances
        {
            // Autoscaled joins are colocated: they relieve pressure on either
            // phase without re-planning the fleet's prefill:decode ratio.
            Some(MembershipChange::Join {
                attached: true,
                role: InstanceRole::Colocated,
            })
        } else if mean_outstanding < policy.scale_down_outstanding_tokens
            && active.len() > policy.min_instances
        {
            Some(MembershipChange::Drain { spill: true })
        } else {
            None
        }
    }

    /// Applies one membership change at the boundary `at`.  Joins reuse the
    /// lowest retired slot (folding the departed instance's statistics into the
    /// retired accumulators) or grow the fleet; drains mark the highest active
    /// slot as draining.  A drain that would leave no routable instance is
    /// ignored — requests must stay servable.
    fn apply_change(
        &mut self,
        change: MembershipChange,
        at: SimTime,
        autoscaled: bool,
        epoch_sharing: bool,
    ) -> bool {
        match change {
            MembershipChange::Join { attached, role } => {
                let attached = attached && self.net_pool.is_some();
                let slot = match self
                    .slot_states
                    .iter()
                    .position(|state| matches!(state, SlotState::Retired))
                {
                    Some(slot) => {
                        let fresh = EngineInstance::with_profile(&self.config, &self.profile, slot);
                        let old = std::mem::replace(&mut self.instances[slot], fresh);
                        Self::accumulate_cache(&mut self.retired_cache, &old.cache_stats());
                        self.retired_offload.merge(&old.offload_stats());
                        slot
                    }
                    None => {
                        let slot = self.instances.len();
                        self.instances.push(EngineInstance::with_profile(
                            &self.config,
                            &self.profile,
                            slot,
                        ));
                        self.slot_states.push(SlotState::Retired);
                        slot
                    }
                };
                self.instances[slot].set_role(role);
                self.slot_states[slot] = SlotState::Active { attached };
                // Epoch-sharing replays install a visibility-filtered view right
                // after membership applies; single-install replays hand the
                // joiner its window-start view now.
                if attached && !epoch_sharing {
                    if let Some(pool) = &self.net_pool {
                        self.instances[slot].install_net_view(pool.view(), false);
                    }
                }
                self.membership_log.push(AppliedMembership {
                    at,
                    change,
                    slot,
                    autoscaled,
                });
                true
            }
            MembershipChange::Drain { spill } => {
                let active = self.active_slots();
                if active.len() <= 1 {
                    return false;
                }
                let slot = *active.last().expect("checked non-empty");
                // A drain may not strand either serving phase: the survivors
                // must be able to prefill (or nothing routes), and any surviving
                // `Prefill`-role slot needs a decode-capable peer to hand off
                // to.  Uniformly colocated fleets always pass both checks, so
                // role-free drains behave exactly as before.
                let survivors = &active[..active.len() - 1];
                let can_prefill = survivors
                    .iter()
                    .any(|&s| self.instances[s].role().can_prefill());
                let can_decode = survivors
                    .iter()
                    .any(|&s| self.instances[s].role().can_decode());
                let needs_decode = survivors
                    .iter()
                    .any(|&s| self.instances[s].role() == InstanceRole::Prefill);
                if !can_prefill || (needs_decode && !can_decode) {
                    return false;
                }
                let attached = self.slot_states[slot].attached();
                self.slot_states[slot] = SlotState::Draining { attached, spill };
                self.membership_log.push(AppliedMembership {
                    at,
                    change,
                    slot,
                    autoscaled,
                });
                true
            }
        }
    }

    /// Retires every draining slot that reached the boundary idle: the
    /// drain-to-net spill publishes the slot's reusable KV into its installed
    /// tier snapshot (stamped `boundary`, so survivors see it one propagation
    /// delay later), and the slot becomes reusable by later joins.
    /// Single-install replays merge the leaver's snapshot back immediately —
    /// the shared pool is the only place its spill could survive the instance.
    fn retire_idle_drains(&mut self, boundary: SimTime, epoch_sharing: bool) {
        for slot in 0..self.slot_states.len() {
            let SlotState::Draining { spill, .. } = self.slot_states[slot] else {
                continue;
            };
            let instance = &mut self.instances[slot];
            if instance.queue_len() > 0 || instance.running_len() > 0 {
                continue;
            }
            let report = if spill {
                instance.drain_to_net(boundary)
            } else {
                DrainSpill::default()
            };
            if !epoch_sharing {
                if let Some(local) = instance.take_net_pool() {
                    if let Some(pool) = &mut self.net_pool {
                        self.net_merge_evictions += pool.merge_from(&local);
                    }
                }
            }
            self.slot_states[slot] = SlotState::Retired;
            self.drain_records.push(DrainRecord {
                slot,
                retired_at: boundary,
                spill: report,
            });
        }
    }

    /// Installs a copy-on-write view of the shared network tier into every
    /// instance.  Both replay paths call this before simulating, so an instance
    /// sees the cluster tier as of the window's start plus its own contributions —
    /// and the parallel path has no mid-run cross-thread state to race on (each
    /// view's overlay is private; the shared base is immutable while views are
    /// out).
    fn install_net_snapshots(&mut self) {
        if let Some(pool) = &self.net_pool {
            for (slot, instance) in self.instances.iter_mut().enumerate() {
                if self.slot_states[slot].attached() {
                    instance.install_net_view(pool.view(), false);
                }
            }
        }
    }

    /// Installs the publish-time-filtered view of the shared tier for the
    /// propagation epoch starting at `visible_at` (see [`NetKvPool::view_at`] and
    /// the legacy [`NetKvPool::visible_snapshot`] it replaces).  When the caller
    /// proved the boundary changed nobody's visible set (`content_unchanged`, see
    /// [`Self::run_stream_core`]'s guard), the installs keep every instance's
    /// routing-probe memoisation warm.
    fn install_net_snapshots_visible(&mut self, visible_at: SimTime, content_unchanged: bool) {
        if let Some(pool) = &self.net_pool {
            for (id, instance) in self.instances.iter_mut().enumerate() {
                if self.slot_states[id].attached() {
                    instance.install_net_view(pool.view_at(visible_at, id), content_unchanged);
                }
            }
        }
    }

    /// Merges every instance's network-tier view back into the shared pool, in
    /// instance-id order (deterministic regardless of which threads finished
    /// first), accounting the merge's own eviction churn.
    ///
    /// Fast path: when every view still shares the pool's state and the worst-case
    /// growth provably fits capacity (no merge can evict), each view surrenders
    /// just its overlay delta — O(entries touched this epoch) for the whole
    /// boundary.  The deltas are all extracted *before* the first absorb so no
    /// outstanding base reference forces a copy-on-write clone of the shared
    /// state.  Any doubt (a mid-window pool mutation, a dense fallback, capacity
    /// pressure) falls back to materialising every view and replaying the legacy
    /// dense merge, which is exact under eviction.
    fn merge_net_snapshots(&mut self) {
        let Some(pool) = &mut self.net_pool else {
            return;
        };
        // Detached and retired slots carry no view — skip them.  Collection order
        // is instance-id order, which both merge paths preserve.
        let views: Vec<NetPoolView> = self
            .instances
            .iter_mut()
            .filter_map(EngineInstance::take_net_view)
            .collect();
        let no_evictions = views.iter().all(|view| view.shares_base(pool))
            && pool
                .resident_blocks()
                .saturating_add(views.iter().map(NetPoolView::merge_added_upper_bound).sum())
                <= pool.capacity_blocks();
        if no_evictions {
            let deltas: Vec<ViewDelta> = views.into_iter().map(NetPoolView::into_delta).collect();
            for delta in deltas {
                self.net_merge_evictions += pool.absorb(delta);
            }
        } else {
            let locals: Vec<NetKvPool> = views.into_iter().map(NetPoolView::into_pool).collect();
            for local in locals {
                self.net_merge_evictions += pool.merge_from(&local);
            }
        }
    }

    /// One pass over a materialised trace for everything replay needs up front:
    /// the longest request (feasibility) and whether the trace is already sorted
    /// by arrival time (routing order) — previously two separate O(n) scans.
    fn scan_trace(arrivals: &[ArrivalPattern]) -> (u64, bool) {
        let mut max_request_tokens = 0;
        let mut sorted = true;
        let mut prev = SimTime::ZERO;
        for arrival in arrivals {
            max_request_tokens = max_request_tokens.max(arrival.template.num_tokens());
            sorted &= arrival.arrival >= prev;
            prev = arrival.arrival;
        }
        (max_request_tokens, sorted)
    }

    fn ensure_feasible(&self, max_request_tokens: u64) -> Result<(), RunError> {
        if !self.can_serve(max_request_tokens) {
            return Err(RunError::WorkloadInfeasible {
                max_request_tokens,
                max_input_length: self.max_input_length(),
            });
        }
        Ok(())
    }

    /// Runs one instance's private event loop over its arrival partition.
    fn simulate_instance(
        instance: &mut EngineInstance,
        partition: &[PartitionEntry],
    ) -> Vec<RequestRecord> {
        let mut events: EventQueue<InstanceEvent> = EventQueue::new();
        for (pos, entry) in partition.iter().enumerate() {
            events.push(entry.arrival, InstanceEvent::Arrival(pos));
        }
        let mut records = Vec::with_capacity(partition.len());
        Self::simulate_instance_until(instance, partition, &mut events, &mut records, None);
        records
    }

    /// Runs one instance's private event loop strictly up to `boundary` (forever
    /// when `None`): events scheduled at or past the boundary stay queued for the
    /// next propagation epoch.
    fn simulate_instance_until(
        instance: &mut EngineInstance,
        partition: &[PartitionEntry],
        events: &mut EventQueue<InstanceEvent>,
        records: &mut Vec<RequestRecord>,
        boundary: Option<SimTime>,
    ) {
        while let Some(at) = events.peek_time() {
            if boundary.is_some_and(|b| at >= b) {
                break;
            }
            let scheduled = events.pop().expect("peeked event");
            let now = scheduled.at;
            match scheduled.event {
                InstanceEvent::Arrival(pos) => {
                    let entry = &partition[pos];
                    let request = PrefillRequest {
                        id: entry.request_id,
                        user_id: entry.user_id,
                        tokens: Arc::clone(&entry.tokens),
                        decode_tokens: entry.decode_tokens,
                        allowed_outputs: Vec::new(),
                        arrival: now,
                        routing: entry.reason,
                    };
                    instance.enqueue_with_hashes(request, entry.hashes.clone(), now);
                    Self::admit_local(instance, now, events);
                }
                InstanceEvent::Admit => {
                    Self::admit_local(instance, now, events);
                }
                InstanceEvent::Complete(request_id) => {
                    if let Some(record) = instance.complete(request_id, now) {
                        records.push(record);
                    }
                    Self::admit_local(instance, now, events);
                }
            }
        }
    }

    /// Sorts records into the canonical report order and aggregates the run report.
    ///
    /// Canonical order is `(completion time, request id)`.  The sequential loop pops
    /// completions in `(completion time, push order)` — the same order up to ties in
    /// completion time — so sorting both paths' records by the canonical key makes the
    /// reports byte-identical.
    fn finish_report(&mut self, mut records: Vec<RequestRecord>, offered_qps: f64) -> RunReport {
        records.sort_unstable_by_key(|r| (r.completed, r.request_id));
        let makespan = records
            .iter()
            .map(|r| r.completed - SimTime::ZERO)
            .max()
            .unwrap_or(SimDuration::ZERO);
        RunReport {
            engine: engine_display_name(self.config.kind).to_string(),
            offered_qps,
            records,
            makespan,
            cache: self.aggregate_cache_stats(),
            offload: self.aggregate_offload_stats(),
            windows: std::mem::take(&mut self.window_metrics),
        }
    }

    /// The shared admission loop of both event-loop flavours: starts as many requests
    /// as the policy admits, then schedules a wake-up when the first stage frees if
    /// work is still waiting.  Event construction is parameterised so the global loop
    /// (instance-tagged events) and the per-instance loop (untagged events) cannot
    /// drift apart.
    fn pump_admissions<E>(
        instance: &mut EngineInstance,
        now: SimTime,
        events: &mut EventQueue<E>,
        completion_event: impl Fn(u64) -> E,
        admit_event: impl Fn() -> E,
    ) {
        while let Some(started) = instance.try_start(now) {
            events.push(started.completion, completion_event(started.request_id));
        }
        // If requests are still waiting, wake up when the first stage frees.
        if instance.queue_len() > 0 {
            let wake = instance.next_admission_time();
            if wake > now {
                events.push(wake, admit_event());
            }
        }
    }

    fn admit(
        instance: &mut EngineInstance,
        instance_idx: usize,
        now: SimTime,
        events: &mut EventQueue<Event>,
    ) {
        Self::pump_admissions(
            instance,
            now,
            events,
            |request_id| Event::Complete {
                instance: instance_idx,
                request_id,
            },
            || Event::Admit(instance_idx),
        );
    }

    fn admit_local(
        instance: &mut EngineInstance,
        now: SimTime,
        events: &mut EventQueue<InstanceEvent>,
    ) {
        Self::pump_admissions(instance, now, events, InstanceEvent::Complete, || {
            InstanceEvent::Admit
        });
    }

    fn aggregate_offload_stats(&self) -> OffloadStats {
        let mut total = OffloadStats::default();
        total.merge(&self.retired_offload);
        for instance in &self.instances {
            total.merge(&instance.offload_stats());
        }
        total.net_evicted_blocks += self.net_merge_evictions;
        // The fabric ledger accounts handoffs at enqueue (the charged side), so
        // the totals are independent of admission retries on the decode side.
        total.handoff_records += self.handoff_ledger.total_records();
        total.handoff_bytes += self.handoff_ledger.total_bytes();
        total
    }

    fn accumulate_cache(total: &mut CacheStats, s: &CacheStats) {
        total.allocations += s.allocations;
        total.hit_tokens += s.hit_tokens;
        total.miss_tokens += s.miss_tokens;
        total.requests_with_hits += s.requests_with_hits;
        total.evicted_blocks += s.evicted_blocks;
        total.committed_blocks += s.committed_blocks;
        total.failed_allocations += s.failed_allocations;
    }

    fn aggregate_cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        Self::accumulate_cache(&mut total, &self.retired_cache);
        for instance in &self.instances {
            Self::accumulate_cache(&mut total, &instance.cache_stats());
        }
        total
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("engine", &engine_display_name(self.config.kind))
            .field("instances", &self.instances.len())
            .field("routing", &self.router.kind())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineKind;
    use crate::routing::UserRouter;
    use gpu::HardwareSetup;
    use model::ModelPreset;
    use simcore::SimRng;
    use workload::{assign_poisson_arrivals, Dataset, PostRecommendationSpec};

    fn small_post_rec_dataset() -> Dataset {
        // A scaled-down post-recommendation workload so unit tests stay fast.
        let spec = PostRecommendationSpec {
            num_users: 4,
            posts_per_user: 6,
            post_tokens: 150,
            profile_mean_tokens: 4_000.0,
            profile_std_tokens: 500.0,
            profile_min_tokens: 3_000,
            profile_max_tokens: 5_000,
        };
        Dataset::post_recommendation(&spec, &mut SimRng::seed_from_u64(7))
    }

    fn config(kind: EngineKind) -> EngineConfig {
        EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            kind,
            6_000,
        )
    }

    #[test]
    fn cluster_serves_every_request_exactly_once() {
        let ds = small_post_rec_dataset();
        let arrivals = assign_poisson_arrivals(&ds, 5.0, &mut SimRng::seed_from_u64(1));
        let mut cluster = Cluster::new(&config(EngineKind::prefillonly_default()));
        let report = cluster.run(&arrivals, 5.0).unwrap();
        assert_eq!(report.records.len(), ds.len());
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.request_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ds.len(), "no request completed twice");
        assert!(report.mean_latency_secs() > 0.0);
        assert!(report.throughput_rps() > 0.0);
    }

    #[test]
    fn single_gpu_engines_spread_users_across_instances() {
        let ds = small_post_rec_dataset();
        let arrivals = assign_poisson_arrivals(&ds, 5.0, &mut SimRng::seed_from_u64(2));
        let mut cluster = Cluster::new(&config(EngineKind::PagedAttention));
        assert_eq!(cluster.instances().len(), 2);
        let report = cluster.run(&arrivals, 5.0).unwrap();
        let on_zero = report.records.iter().filter(|r| r.instance == 0).count();
        let on_one = report.records.iter().filter(|r| r.instance == 1).count();
        assert!(
            on_zero > 0 && on_one > 0,
            "both instances must serve requests"
        );
        // User stickiness: every user maps to exactly one instance.
        for user in 0..4u64 {
            let instances: Vec<usize> = report
                .records
                .iter()
                .filter(|r| r.user_id == user)
                .map(|r| r.instance)
                .collect();
            assert!(instances.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn parallel_engines_use_one_instance() {
        let cluster = Cluster::new(&config(EngineKind::TensorParallel));
        assert_eq!(cluster.instances().len(), 1);
    }

    #[test]
    fn infeasible_workload_is_reported() {
        // The credit-verification workload (40k-60k tokens) cannot run on a
        // PagedAttention L4 deployment (MIL ~24k): Table 2 marks it ✗.
        let ds = Dataset::generate(
            workload::WorkloadKind::CreditVerification,
            &mut SimRng::seed_from_u64(3),
        );
        let arrivals = assign_poisson_arrivals(&ds, 0.2, &mut SimRng::seed_from_u64(3));
        let mut cluster = Cluster::new(&EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            EngineKind::PagedAttention,
            60_000,
        ));
        let err = cluster.run(&arrivals, 0.2).unwrap_err();
        assert!(matches!(err, RunError::WorkloadInfeasible { .. }));
        assert!(err.to_string().contains("maximum input length"));
    }

    #[test]
    fn prefillonly_handles_the_long_workload_on_one_gpu() {
        // ... while PrefillOnly can run it on the same hardware (Table 2 ✓).
        let ds = Dataset::generate(
            workload::WorkloadKind::CreditVerification,
            &mut SimRng::seed_from_u64(3),
        );
        let arrivals: Vec<_> = assign_poisson_arrivals(&ds, 0.2, &mut SimRng::seed_from_u64(3))
            .into_iter()
            .take(6)
            .collect();
        let mut cluster = Cluster::new(&EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            EngineKind::prefillonly_default(),
            60_000,
        ));
        let report = cluster.run(&arrivals, 0.2).unwrap();
        assert_eq!(report.records.len(), 6);
    }

    #[test]
    fn higher_offered_load_increases_latency() {
        let ds = small_post_rec_dataset();
        let mut low = Cluster::new(&config(EngineKind::prefillonly_default()));
        let mut high = Cluster::new(&config(EngineKind::prefillonly_default()));
        let arrivals_low = assign_poisson_arrivals(&ds, 0.5, &mut SimRng::seed_from_u64(5));
        let arrivals_high = assign_poisson_arrivals(&ds, 50.0, &mut SimRng::seed_from_u64(5));
        let report_low = low.run(&arrivals_low, 0.5).unwrap();
        let report_high = high.run(&arrivals_high, 50.0).unwrap();
        assert!(
            report_high.mean_latency_secs() > report_low.mean_latency_secs(),
            "overload must inflate latency ({} vs {})",
            report_high.mean_latency_secs(),
            report_low.mean_latency_secs()
        );
    }

    /// Tentpole invariant: the threaded per-instance replay must be *identical* to the
    /// single-threaded interleaved reference — same records (ids, timings, instances,
    /// cache hits), same makespan, same aggregated cache statistics.
    #[test]
    fn parallel_run_is_identical_to_sequential() {
        let ds = small_post_rec_dataset();
        for (kind, qps, seed) in [
            (EngineKind::prefillonly_default(), 5.0, 1u64),
            (EngineKind::prefillonly_default(), 50.0, 2),
            (EngineKind::PrefillOnly { lambda: 0.0 }, 20.0, 3),
            (EngineKind::PagedAttention, 5.0, 4),
            (EngineKind::chunked_default(), 30.0, 5),
        ] {
            let arrivals = assign_poisson_arrivals(&ds, qps, &mut SimRng::seed_from_u64(seed));
            let mut parallel = Cluster::new(&config(kind));
            assert!(
                parallel.instances().len() > 1,
                "the determinism check must exercise a replicated deployment"
            );
            let mut sequential = Cluster::new(&config(kind));
            let a = parallel.run(&arrivals, qps).unwrap();
            let b = sequential.run_sequential(&arrivals, qps).unwrap();
            assert_eq!(a.records, b.records, "kind {kind:?} qps {qps}");
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.cache, b.cache);
            assert_eq!(a.engine, b.engine);
        }
    }

    #[test]
    fn parallel_run_matches_sequential_even_on_unsorted_arrivals() {
        // The public API takes any &[ArrivalPattern]; routing must follow event time,
        // not slice position, for the two paths to stay identical.
        let ds = small_post_rec_dataset();
        let mut arrivals = assign_poisson_arrivals(&ds, 10.0, &mut SimRng::seed_from_u64(11));
        arrivals.reverse();
        let mut parallel = Cluster::new(&config(EngineKind::prefillonly_default()));
        let mut sequential = Cluster::new(&config(EngineKind::prefillonly_default()));
        let a = parallel.run(&arrivals, 10.0).unwrap();
        let b = sequential.run_sequential(&arrivals, 10.0).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.cache, b.cache);
    }

    #[test]
    fn single_instance_run_matches_sequential_too() {
        let ds = small_post_rec_dataset();
        let arrivals = assign_poisson_arrivals(&ds, 10.0, &mut SimRng::seed_from_u64(9));
        let mut parallel = Cluster::new(&config(EngineKind::TensorParallel));
        let mut sequential = Cluster::new(&config(EngineKind::TensorParallel));
        let a = parallel.run(&arrivals, 10.0).unwrap();
        let b = sequential.run_sequential(&arrivals, 10.0).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.cache, b.cache);
    }

    /// The workload spec of [`offload_pressure_config`], shared with the tests that
    /// regenerate the same trace as an independent stream at the same seed.
    fn pressure_spec() -> workload::PostRecommendationSpec {
        workload::PostRecommendationSpec {
            num_users: 6,
            posts_per_user: 8,
            profile_mean_tokens: 5_000.0,
            profile_std_tokens: 600.0,
            profile_min_tokens: 4_000,
            profile_max_tokens: 6_000,
            ..workload::PostRecommendationSpec::default()
        }
    }

    /// An offload-enabled deployment under real eviction pressure: a squeezed KV pool
    /// over interleaved per-request arrivals, so user profiles spill to the CPU tier
    /// between a user's consecutive requests and rehydrate on their return.
    fn offload_pressure_config(cpu_bytes: u64) -> (EngineConfig, Vec<ArrivalPattern>) {
        let spec = pressure_spec();
        let mut rng = SimRng::seed_from_u64(42);
        let ds = Dataset::post_recommendation(&spec, &mut rng);
        let arrivals = workload::assign_poisson_arrivals_with(
            &ds,
            3.0,
            workload::ArrivalGranularity::PerRequest,
            &mut rng,
        );
        let mut config = EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            EngineKind::prefillonly_default(),
            ds.max_request_tokens(),
        );
        // Squeeze the KV pool below the per-instance profile working set so the
        // prefix cache must evict between a user's requests.
        config.memory_utilization = 0.70;
        ((config).with_cpu_offload(cpu_bytes), arrivals)
    }

    /// The determinism guarantee extends to the hierarchical cache: with offload
    /// enabled and the CPU tier actively spilling/reloading, the threaded replay is
    /// byte-identical to the sequential reference — records, cache stats and offload
    /// stats alike.
    #[test]
    fn parallel_run_is_identical_to_sequential_with_offload() {
        let (config, arrivals) = offload_pressure_config(64 << 30);
        let mut parallel = Cluster::new(&config);
        assert!(parallel.instances().len() > 1);
        let mut sequential = Cluster::new(&config);
        let a = parallel.run(&arrivals, 3.0).unwrap();
        let b = sequential.run_sequential(&arrivals, 3.0).unwrap();
        assert!(
            a.offload.reloaded_blocks > 0,
            "the scenario must actually exercise the CPU tier"
        );
        assert_eq!(a.records, b.records);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.cache, b.cache);
        assert_eq!(a.offload, b.offload);
    }

    /// `cpu_kv_capacity_bytes = 0` is inert — the deployment discards eviction
    /// victims exactly as the published system, with no offload statistics — while
    /// the same trace under a real CPU tier demonstrably diverges (so the inertness
    /// check is not vacuous).
    #[test]
    fn zero_cpu_capacity_is_byte_identical_to_discard() {
        let (enabled, arrivals) = offload_pressure_config(64 << 30);
        let disabled = enabled.clone().with_cpu_offload(0);
        let a = Cluster::new(&disabled).run(&arrivals, 3.0).unwrap();
        assert_eq!(a.offload, kvcache::OffloadStats::default());
        assert!(a.records.iter().all(|r| r.reloaded_tokens == 0));
        assert!(
            a.cache.evicted_blocks > 0,
            "the pool must be under pressure"
        );

        let b = Cluster::new(&enabled).run(&arrivals, 3.0).unwrap();
        assert!(b.offload.reloaded_blocks > 0);
        assert_ne!(
            a.records, b.records,
            "an active CPU tier must change the replay"
        );
    }

    /// Squeeze *both* upper tiers so the network tier actually gets fed: the GPU
    /// pool evicts between a user's requests and the CPU pool is about one profile
    /// big, so reused profile blocks cascade CPU → net through the spill filter.
    fn net_pressure_config(net_bytes: u64) -> (EngineConfig, Vec<ArrivalPattern>) {
        let (config, arrivals) = offload_pressure_config(768 << 20);
        (config.with_net_kv(net_bytes), arrivals)
    }

    /// The determinism guarantee extends to the cluster-shared network tier: with
    /// all three tiers active (and the shared pool demonstrably fed and read), the
    /// threaded replay is byte-identical to the sequential reference.
    #[test]
    fn parallel_run_is_identical_to_sequential_with_shared_net_pool() {
        let (config, arrivals) = net_pressure_config(64 << 30);
        let mut parallel = Cluster::new(&config);
        assert!(parallel.instances().len() > 1);
        let mut sequential = Cluster::new(&config);
        let a = parallel.run(&arrivals, 3.0).unwrap();
        let b = sequential.run_sequential(&arrivals, 3.0).unwrap();
        assert!(
            a.offload.net_offloaded_blocks > 0,
            "the scenario must feed the shared tier"
        );
        assert_eq!(a.records, b.records);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.cache, b.cache);
        assert_eq!(a.offload, b.offload);
        // The merged shared pools agree too, so a follow-up window starts identical.
        let pa = parallel.net_pool().unwrap();
        let pb = sequential.net_pool().unwrap();
        assert!(pa.resident_blocks() > 0, "merge must have collected spills");
        assert_eq!(pa.resident_blocks(), pb.resident_blocks());
        assert_eq!(pa.generation(), pb.generation());
    }

    /// Acceptance: with `net_kv_capacity_bytes = 0` the engine is byte-identical to
    /// the PR 2 two-tier engine.  That engine's reload behaviour ("always reload
    /// whatever is present") is kept as [`ReloadPolicyKind::Always`]; on the
    /// two-tier evaluated configuration the modelled per-request decision reaches
    /// the same verdict for every segment (PCIe reloads of profile-sized segments
    /// always beat recomputation), so the default engine replays byte-for-byte like
    /// the old one — offload statistics included.
    #[test]
    fn modeled_reload_policy_without_net_tier_matches_the_two_tier_engine() {
        let (config, arrivals) = offload_pressure_config(64 << 30);
        assert_eq!(config.net_kv_capacity_bytes, 0);
        assert_eq!(
            config.reload_policy,
            crate::config::ReloadPolicyKind::Modeled
        );
        let two_tier = config
            .clone()
            .with_reload_policy(crate::config::ReloadPolicyKind::Always);
        let a = Cluster::new(&config).run(&arrivals, 3.0).unwrap();
        let b = Cluster::new(&two_tier).run(&arrivals, 3.0).unwrap();
        assert!(a.offload.reloaded_blocks > 0, "the CPU tier must be active");
        assert_eq!(a.records, b.records);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.cache, b.cache);
        assert_eq!(a.offload, b.offload);
        assert!(a.records.iter().all(|r| r.net_reloaded_tokens == 0));
    }

    /// `net_kv_capacity_bytes = 0` is inert — no shared pool, no net statistics —
    /// while the same trace against a deployment whose shared tier is already warm
    /// demonstrably diverges (so the inertness check is not vacuous).
    #[test]
    fn zero_net_capacity_is_byte_identical_to_two_tier() {
        let (enabled, arrivals) = net_pressure_config(64 << 30);
        let disabled = enabled.clone().with_net_kv(0);
        let mut cluster = Cluster::new(&disabled);
        let a = cluster.run(&arrivals, 3.0).unwrap();
        assert!(cluster.net_pool().is_none());
        assert_eq!(a.offload.net_offloaded_blocks, 0);
        assert_eq!(a.offload.net_reloaded_blocks, 0);
        assert!(a.records.iter().all(|r| r.net_reloaded_tokens == 0));

        // Feed the shared tier with one replay window, then point a *fresh*
        // deployment (cold GPU and CPU caches) at the warm pool: its replay must
        // read the tier and diverge from the two-tier engine.
        let mut warm_cluster = Cluster::new(&enabled);
        warm_cluster.run(&arrivals, 3.0).unwrap();
        let warm_pool = warm_cluster.net_pool().unwrap().clone();
        assert!(
            warm_pool.resident_blocks() > 0,
            "window 1 must feed the tier"
        );
        let b = Cluster::with_warm_net_pool(&enabled, warm_pool)
            .run(&arrivals, 3.0)
            .unwrap();
        assert!(
            b.offload.net_reloaded_blocks > 0,
            "the warm tier must serve remote reloads"
        );
        assert_ne!(
            a.records, b.records,
            "an active shared tier must change the replay"
        );
    }

    /// Seeding a deployment with a warm pool never overrides its configured
    /// capacity: the warm *contents* are absorbed into a pool sized by this
    /// deployment's `net_kv_capacity_bytes`.
    #[test]
    fn warm_net_pool_capacity_follows_the_configuration() {
        let (enabled, _) = net_pressure_config(64 << 30);
        let reference = Cluster::new(&enabled);
        let block_bytes = reference.instances()[0].kv_block_bytes();
        let expected_capacity = reference.net_pool().unwrap().capacity_blocks();

        // A warm pool from a much smaller foreign deployment (8 blocks).
        let mut warm = kvcache::NetKvPool::new(8 * block_bytes, block_bytes);
        let tokens: Vec<u32> = (0..8 * enabled.block_size as u32).collect();
        warm.offload(
            &kvcache::hash_token_blocks(&tokens, enabled.block_size),
            simcore::SimTime::ZERO,
        );

        let seeded = Cluster::with_warm_net_pool(&enabled, warm);
        let pool = seeded.net_pool().unwrap();
        assert_eq!(
            pool.capacity_blocks(),
            expected_capacity,
            "the configuration, not the seed, sizes the tier"
        );
        assert_eq!(pool.resident_blocks(), 8, "the warm contents are absorbed");
    }

    /// Profile sharing (`Cluster::new` profiles once and clones): bit-identical to
    /// per-instance profiling, both in the derived profile quantities and in a full
    /// replay against independently profiled instances.
    #[test]
    fn shared_profile_is_bit_identical_to_per_instance_profiling() {
        let config = config(EngineKind::prefillonly_default());
        let cluster = Cluster::new(&config);
        for (id, shared) in cluster.instances().iter().enumerate() {
            let fresh = EngineInstance::new(&config, id);
            assert_eq!(fresh.max_input_length(), shared.max_input_length());
            assert_eq!(fresh.kv_pool_tokens(), shared.kv_pool_tokens());
            assert_eq!(fresh.kv_block_bytes(), shared.kv_block_bytes());
            assert_eq!(fresh.jct_estimator(), shared.jct_estimator());
            assert_eq!(fresh.cpu_hit_discount(), shared.cpu_hit_discount());
            assert_eq!(fresh.net_hit_discount(), shared.net_hit_discount());
        }
        // Behavioural pin: a replay on the shared-profile cluster equals a replay
        // where every instance was profiled independently.
        let ds = small_post_rec_dataset();
        let arrivals = assign_poisson_arrivals(&ds, 5.0, &mut SimRng::seed_from_u64(17));
        let mut shared = cluster;
        let mut unshared = Cluster {
            config: Arc::new(config.clone()),
            instances: (0..config.num_instances() as usize)
                .map(|id| EngineInstance::new(&config, id))
                .collect(),
            slot_states: vec![
                SlotState::Active { attached: false };
                config.num_instances() as usize
            ],
            profile: InstanceProfile::new(&config),
            router: config
                .routing
                .build(config.num_instances() as usize)
                .unwrap(),
            net_pool: None,
            net_merge_evictions: 0,
            membership: workload::MembershipSchedule::default(),
            membership_cursor: 0,
            autoscaler_cooldown: 0,
            membership_log: Vec::new(),
            drain_records: Vec::new(),
            retired_cache: CacheStats::default(),
            retired_offload: OffloadStats::default(),
            worker_pool: None,
            handoff_ledger: HandoffLedger::default(),
            handoff_payloads: HashMap::new(),
            window_metrics: Vec::new(),
        };
        let a = shared.run(&arrivals, 5.0).unwrap();
        let b = unshared.run(&arrivals, 5.0).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.cache, b.cache);
        assert_eq!(a.makespan, b.makespan);
    }

    /// The determinism guarantee extends to every routing policy: under load-balanced
    /// and cache-aware routing (with all three KV tiers active, so the cache-aware
    /// probes actually see residency), the threaded replay stays byte-identical to
    /// the sequential reference — across *two* consecutive replay windows, so
    /// window-to-window routing state (sticky pins, warmed caches) is exercised too.
    #[test]
    fn parallel_run_is_identical_to_sequential_under_every_routing_policy() {
        for policy in [
            crate::routing::RoutingPolicyKind::StickyUser,
            crate::routing::RoutingPolicyKind::LeastLoaded,
            crate::routing::RoutingPolicyKind::CacheAware,
        ] {
            let (config, arrivals) = net_pressure_config(64 << 30);
            let config = config.with_routing(policy);
            let mut parallel = Cluster::new(&config);
            assert!(parallel.instances().len() > 1);
            let mut sequential = Cluster::new(&config);
            for window in 0..2 {
                let a = parallel.run(&arrivals, 3.0).unwrap();
                let b = sequential.run_sequential(&arrivals, 3.0).unwrap();
                assert_eq!(a.records, b.records, "{policy:?} window {window}");
                assert_eq!(a.makespan, b.makespan, "{policy:?} window {window}");
                assert_eq!(a.cache, b.cache, "{policy:?} window {window}");
                assert_eq!(a.offload, b.offload, "{policy:?} window {window}");
            }
        }
    }

    /// Regression pin: the refactored `StickyUser` policy reproduces the
    /// pre-refactor `UserRouter` byte for byte on an existing e2e trace — the same
    /// per-user instance assignment (round-robin in order of first appearance) with
    /// both the stamped fast path and the hash-map slow path, which must also agree
    /// with each other record-for-record.
    #[test]
    fn sticky_policy_is_byte_identical_to_the_pre_refactor_router() {
        let ds = small_post_rec_dataset();
        let arrivals = assign_poisson_arrivals(&ds, 5.0, &mut SimRng::seed_from_u64(2));
        assert!(arrivals.iter().all(|a| a.sticky.is_some()));

        // The slow path: strip the trace-generation stamps so the policy must run
        // its windowed UserRouter pass.
        let mut unstamped = arrivals.clone();
        for arrival in &mut unstamped {
            arrival.sticky = None;
        }

        let config = config(EngineKind::prefillonly_default());
        let fast = Cluster::new(&config).run(&arrivals, 5.0).unwrap();
        let slow = Cluster::new(&config).run(&unstamped, 5.0).unwrap();
        assert_eq!(fast.records, slow.records);
        assert_eq!(fast.cache, slow.cache);
        assert_eq!(fast.makespan, slow.makespan);

        // Both must equal the §7.1 reference router applied in `(arrival, idx)`
        // order — the exact pre-refactor routing.
        let mut reference = UserRouter::new(config.num_instances() as usize).unwrap();
        let mut expected: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        order.sort_by_key(|&idx| (arrivals[idx].arrival, idx));
        for idx in order {
            let user = arrivals[idx].template.user_id;
            let instance = reference.route(user);
            expected.insert(idx as u64, instance);
        }
        for record in &fast.records {
            assert_eq!(record.instance, expected[&record.request_id]);
            assert!(matches!(
                record.routing,
                crate::routing::RoutingReason::StickyNew
                    | crate::routing::RoutingReason::StickyExisting
            ));
        }
    }

    /// Acceptance pin: `net_propagation_ms = 0` keeps the historical
    /// window-boundary-only propagation byte for byte.  The propagation-epoch
    /// machinery with a delay longer than the whole trace must agree too — it
    /// degenerates to a single epoch whose snapshot is the fully-settled shared
    /// pool, i.e. exactly the window-boundary model — so the pin covers both the
    /// legacy code path and the epoch path's delay-free limit, across two
    /// consecutive windows and both replay flavours.
    #[test]
    fn zero_propagation_delay_is_byte_identical_to_the_window_boundary_path() {
        for policy in [
            crate::routing::RoutingPolicyKind::StickyUser,
            crate::routing::RoutingPolicyKind::CacheAware,
        ] {
            let (config, arrivals) = net_pressure_config(64 << 30);
            let config = config.with_routing(policy);
            assert_eq!(config.net_propagation_ms, 0, "zero is the default");
            let span_ms = arrivals
                .iter()
                .map(|a| (a.arrival - SimTime::ZERO).as_secs_f64() * 1e3)
                .fold(0.0f64, f64::max) as u64;
            let one_epoch = config.clone().with_net_propagation_ms(span_ms + 1_000);

            let mut boundary_only = Cluster::new(&config);
            let mut epoch_path = Cluster::new(&one_epoch);
            let mut epoch_path_seq = Cluster::new(&one_epoch);
            for window in 0..2 {
                let a = boundary_only.run(&arrivals, 3.0).unwrap();
                let b = epoch_path.run(&arrivals, 3.0).unwrap();
                let c = epoch_path_seq.run_sequential(&arrivals, 3.0).unwrap();
                assert!(
                    a.offload.net_offloaded_blocks > 0,
                    "the scenario must exercise the shared tier"
                );
                assert_eq!(a.records, b.records, "{policy:?} window {window}");
                assert_eq!(a.cache, b.cache, "{policy:?} window {window}");
                assert_eq!(a.offload, b.offload, "{policy:?} window {window}");
                assert_eq!(a.makespan, b.makespan, "{policy:?} window {window}");
                assert_eq!(b.records, c.records, "{policy:?} window {window}");
                assert_eq!(b.offload, c.offload, "{policy:?} window {window}");
                assert_eq!(
                    a.net_propagated_tokens(),
                    0,
                    "a single epoch has no mid-window propagation to credit"
                );
                assert_eq!(a.offload.net_propagated_reload_blocks, 0);
            }
            let pa = boundary_only.net_pool().unwrap();
            let pb = epoch_path.net_pool().unwrap();
            assert_eq!(pa.resident_blocks(), pb.resident_blocks());
            assert_eq!(pa.generation(), pb.generation());
        }
    }

    /// The determinism guarantee extends to within-window propagation: with a delay
    /// short enough that every window spans several propagation epochs, all three KV
    /// tiers active and cache-aware routing consulting per-epoch probes, the
    /// threaded replay stays byte-identical to the sequential reference across two
    /// consecutive windows.
    #[test]
    fn parallel_run_is_identical_to_sequential_across_propagation_epochs() {
        let (config, arrivals) = net_pressure_config(64 << 30);
        let span = arrivals
            .iter()
            .map(|a| a.arrival)
            .max()
            .unwrap()
            .saturating_since(SimTime::ZERO);
        let delay_ms = 2_000u64;
        assert!(
            span.as_secs_f64() * 1e3 > 2.0 * delay_ms as f64,
            "the trace must span at least two propagation epochs, got {span}"
        );
        let config = config
            .with_routing(crate::routing::RoutingPolicyKind::CacheAware)
            .with_net_propagation_ms(delay_ms);

        let mut parallel = Cluster::new(&config);
        assert!(parallel.instances().len() > 1);
        let mut sequential = Cluster::new(&config);
        for window in 0..2 {
            let a = parallel.run(&arrivals, 3.0).unwrap();
            let b = sequential.run_sequential(&arrivals, 3.0).unwrap();
            assert!(
                a.offload.net_offloaded_blocks > 0,
                "window {window} must feed the shared tier"
            );
            assert_eq!(a.records, b.records, "window {window}");
            assert_eq!(a.makespan, b.makespan, "window {window}");
            assert_eq!(a.cache, b.cache, "window {window}");
            assert_eq!(a.offload, b.offload, "window {window}");
        }
        let pa = parallel.net_pool().unwrap();
        let pb = sequential.net_pool().unwrap();
        assert_eq!(pa.resident_blocks(), pb.resident_blocks());
        assert_eq!(pa.generation(), pb.generation());
    }

    /// The warm-join construction boundary: an undeployable configuration, a
    /// disabled network tier and a foreign block geometry are typed errors from
    /// [`Cluster::try_with_warm_net_pool`], not panics from deep inside instance
    /// construction.
    #[test]
    fn warm_net_pool_construction_problems_are_config_errors() {
        let (enabled, _) = net_pressure_config(64 << 30);
        let block_bytes = Cluster::new(&enabled).instances()[0].kv_block_bytes();
        let warm = || kvcache::NetKvPool::new(8 * block_bytes, block_bytes);

        // Zero instances surfaces as the same error `try_new` reports.
        let mut zero_instances = enabled.clone();
        zero_instances.hardware.num_gpus = 0;
        assert_eq!(
            Cluster::try_with_warm_net_pool(&zero_instances, warm()).unwrap_err(),
            crate::config::ConfigError::NoInstances
        );

        // A deployment without a network tier cannot absorb a warm pool.
        let err =
            Cluster::try_with_warm_net_pool(&enabled.clone().with_net_kv(0), warm()).unwrap_err();
        assert_eq!(err, crate::config::ConfigError::WarmPoolNeedsNetTier);
        assert!(err.to_string().contains("net_kv_capacity_bytes"));

        // A warm pool of foreign block geometry is rejected with both geometries.
        let foreign = kvcache::NetKvPool::new(8 * (block_bytes + 1), block_bytes + 1);
        let err = Cluster::try_with_warm_net_pool(&enabled, foreign).unwrap_err();
        assert_eq!(
            err,
            crate::config::ConfigError::WarmPoolGeometryMismatch {
                deployment_block_bytes: block_bytes,
                pool_block_bytes: block_bytes + 1,
            }
        );
        assert!(err.to_string().contains("block geometry"));

        // The happy path still builds, and the panicking variant delegates.
        assert!(Cluster::try_with_warm_net_pool(&enabled, warm()).is_ok());
        let cluster = Cluster::with_warm_net_pool(&enabled, warm());
        assert_eq!(cluster.net_pool().unwrap().resident_blocks(), 0);
    }

    /// Spliced/truncated traces silently leave the sticky arithmetic fast path:
    /// whatever inconsistency the stamps carry — duplicated ranks, a cut-out user,
    /// a stamped head on an unstamped tail — the fallback must replay
    /// record-identical to the same trace with every stamp stripped (the slow
    /// path), because stamps are a routing accelerator, never a routing *input*.
    #[test]
    fn sticky_fallback_on_inconsistent_stamps_is_record_identical_to_the_slow_path() {
        let ds = small_post_rec_dataset();
        let arrivals = assign_poisson_arrivals(&ds, 5.0, &mut SimRng::seed_from_u64(2));
        assert!(arrivals.iter().all(|a| a.sticky.is_some()));

        let splice = |mutate: &dyn Fn(&mut Vec<ArrivalPattern>)| {
            let mut spliced = arrivals.clone();
            mutate(&mut spliced);
            spliced
        };
        let cases: Vec<(&str, Vec<ArrivalPattern>)> = vec![
            (
                "duplicate user_seq",
                splice(&|trace| {
                    // Re-stamp the second distinct user's arrivals with rank 0, as a
                    // head-on splice of two traces would.
                    let first_user = trace[0].template.user_id;
                    for arrival in trace.iter_mut() {
                        if arrival.template.user_id != first_user {
                            if let Some(sticky) = &mut arrival.sticky {
                                sticky.user_seq = 0;
                            }
                        }
                    }
                }),
            ),
            (
                "non-contiguous ranks",
                splice(&|trace| {
                    // Drop every arrival of the rank-0 user — a truncated trace whose
                    // remaining firsts start at rank 1.
                    let first_user = trace[0].template.user_id;
                    trace.retain(|a| a.template.user_id != first_user);
                }),
            ),
            (
                "stamped-then-unstamped",
                splice(&|trace| {
                    let half = trace.len() / 2;
                    for arrival in &mut trace[half..] {
                        arrival.sticky = None;
                    }
                }),
            ),
        ];

        let config = config(EngineKind::prefillonly_default());
        for (name, spliced) in cases {
            let mut unstamped = spliced.clone();
            for arrival in &mut unstamped {
                arrival.sticky = None;
            }
            let fallback = Cluster::new(&config).run(&spliced, 5.0).unwrap();
            let slow = Cluster::new(&config).run(&unstamped, 5.0).unwrap();
            assert_eq!(fallback.records, slow.records, "{name}");
            assert_eq!(fallback.cache, slow.cache, "{name}");
            assert_eq!(fallback.makespan, slow.makespan, "{name}");
        }
    }

    /// The configuration validation boundary: a deployment with zero instances is a
    /// typed error from [`Cluster::try_new`], not a panic from deep inside the
    /// router.
    #[test]
    fn zero_instance_deployment_is_a_config_error() {
        let mut config = config(EngineKind::PagedAttention);
        config.hardware.num_gpus = 0;
        let err = Cluster::try_new(&config).unwrap_err();
        assert_eq!(err, crate::config::ConfigError::NoInstances);
        assert!(Cluster::try_new(&self::config(EngineKind::PagedAttention)).is_ok());
    }

    /// Satellite acceptance: replaying an *independently generated* arrival stream
    /// (same dataset, same rng seed, never materialised) is byte-identical to
    /// replaying the materialised trace — with all three KV tiers active, under
    /// both sticky and cache-aware routing, across several propagation epochs.
    #[test]
    fn streamed_generator_replay_is_byte_identical_to_the_materialised_trace() {
        use workload::{ArrivalGranularity, PoissonArrivalStream};
        for policy in [
            crate::routing::RoutingPolicyKind::StickyUser,
            crate::routing::RoutingPolicyKind::CacheAware,
        ] {
            let (config, arrivals) = net_pressure_config(64 << 30);
            let config = config.with_routing(policy).with_net_propagation_ms(2_000);
            let span = arrivals.iter().map(|a| a.arrival).max().unwrap();
            assert!(
                (span - SimTime::ZERO).as_secs_f64() > 4.0,
                "the trace must span at least two propagation epochs"
            );

            // Rebuild the generator state the materialised trace came from, so the
            // stream below is produced from scratch at the same seed.
            let mut rng = SimRng::seed_from_u64(42);
            let ds = Dataset::post_recommendation(&pressure_spec(), &mut rng);
            let mut stream =
                PoissonArrivalStream::new(&ds, 3.0, ArrivalGranularity::PerRequest, &mut rng);

            let mut materialised = Cluster::new(&config);
            let mut streamed = Cluster::new(&config);
            let a = materialised.run(&arrivals, 3.0).unwrap();
            let b = streamed.run_stream(&mut stream, 3.0).unwrap();
            assert!(
                a.offload.net_offloaded_blocks > 0,
                "the scenario must feed the shared tier"
            );
            assert_eq!(a.records, b.records, "{policy:?}");
            assert_eq!(a.makespan, b.makespan, "{policy:?}");
            assert_eq!(a.cache, b.cache, "{policy:?}");
            assert_eq!(a.offload, b.offload, "{policy:?}");
            let pa = materialised.net_pool().unwrap();
            let pb = streamed.net_pool().unwrap();
            assert_eq!(pa.resident_blocks(), pb.resident_blocks());
            assert_eq!(pa.generation(), pb.generation());
        }
    }

    /// The byte-identity guarantee extends to adaptive epoch lengths: the clock is
    /// a pure function of the trace prefix, so the threaded replay cuts the window
    /// exactly like the sequential reference even while epochs shrink under burst.
    #[test]
    fn parallel_stream_replay_matches_sequential_with_adaptive_epochs() {
        let (config, arrivals) = net_pressure_config(64 << 30);
        // Target 2 arrivals/epoch under a ~6 arrivals/epoch load, so the clock
        // demonstrably adapts (halves towards min_ms) during the replay.
        let config = config
            .with_routing(crate::routing::RoutingPolicyKind::CacheAware)
            .with_net_propagation_ms(2_000)
            .with_adaptive_epochs(2, 250, 8_000);
        let mut parallel = Cluster::new(&config);
        assert!(parallel.instances().len() > 1);
        let mut sequential = Cluster::new(&config);
        for window in 0..2 {
            let a = parallel.run(&arrivals, 3.0).unwrap();
            let b = sequential.run_sequential(&arrivals, 3.0).unwrap();
            assert_eq!(a.records, b.records, "window {window}");
            assert_eq!(a.makespan, b.makespan, "window {window}");
            assert_eq!(a.cache, b.cache, "window {window}");
            assert_eq!(a.offload, b.offload, "window {window}");
        }
        let pa = parallel.net_pool().unwrap();
        let pb = sequential.net_pool().unwrap();
        assert_eq!(pa.resident_blocks(), pb.resident_blocks());
        assert_eq!(pa.generation(), pb.generation());
    }

    /// Without a shared tier the streamed replay chunks purely for bounded memory;
    /// under sticky routing (cadence-independent decisions) it must replay the
    /// window path's records exactly, and parallel must match sequential.
    #[test]
    fn tierless_stream_replay_matches_the_window_replay_under_sticky_routing() {
        let ds = small_post_rec_dataset();
        let arrivals = assign_poisson_arrivals(&ds, 5.0, &mut SimRng::seed_from_u64(1));
        let config = config(EngineKind::prefillonly_default());
        let a = Cluster::new(&config).run(&arrivals, 5.0).unwrap();
        let mut stream = SliceArrivalStream::from_sorted(&arrivals);
        let b = Cluster::new(&config).run_stream(&mut stream, 5.0).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.cache, b.cache);
        assert_eq!(a.makespan, b.makespan);
        let mut stream = SliceArrivalStream::from_sorted(&arrivals);
        let c = Cluster::new(&config)
            .run_stream_sequential(&mut stream, 5.0)
            .unwrap();
        assert_eq!(b.records, c.records);
        assert_eq!(b.cache, c.cache);
    }

    /// [`Cluster::run_sorted`] replays a [`SortedTrace`] identically to [`Cluster::run`]
    /// on its arrivals — the carried sortedness/max-length properties change the
    /// pre-work, never the replay.
    #[test]
    fn run_sorted_matches_run_on_the_same_arrivals() {
        let ds = small_post_rec_dataset();
        let mut arrivals = assign_poisson_arrivals(&ds, 5.0, &mut SimRng::seed_from_u64(3));
        arrivals.reverse(); // SortedTrace must restore order itself
        let trace = SortedTrace::new(arrivals);
        let config = config(EngineKind::prefillonly_default());
        let a = Cluster::new(&config).run(trace.arrivals(), 5.0).unwrap();
        let b = Cluster::new(&config).run_sorted(&trace, 5.0).unwrap();
        let c = Cluster::new(&config)
            .run_sorted_sequential(&trace, 5.0)
            .unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.cache, b.cache);
        assert_eq!(b.records, c.records);
    }

    /// Scale smoke: thousands of requests flow through the streaming path with the
    /// arrival buffer bounded by the chunk clock, every request served exactly once.
    #[test]
    fn fleet_stream_replays_at_scale() {
        use workload::{SharedPrefixFleetSpec, SharedPrefixFleetStream};
        let spec = SharedPrefixFleetSpec {
            num_cohorts: 40,
            users_per_cohort: 5,
            prefix_tokens: 512,
            suffix_tokens: 64,
            requests_per_user: 40,
        };
        let mut stream = SharedPrefixFleetStream::new(spec, 200.0, 7);
        assert_eq!(stream.len_hint(), Some(8_000));
        let mut cluster = Cluster::new(&config(EngineKind::prefillonly_default()));
        let report = cluster.run_stream(&mut stream, 200.0).unwrap();
        assert_eq!(report.records.len(), 8_000);
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.request_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            8_000,
            "every streamed request served exactly once"
        );
    }

    /// A stream cannot be pre-scanned, so an oversized request surfaces as a
    /// mid-run [`RunError::WorkloadInfeasible`].
    #[test]
    fn oversized_streamed_request_aborts_the_replay() {
        use workload::{SharedPrefixFleetSpec, SharedPrefixFleetStream};
        // 40k-token requests overwhelm a PagedAttention L4 deployment (MIL ~24k),
        // exactly as the materialised infeasibility test above.
        let spec = SharedPrefixFleetSpec {
            num_cohorts: 1,
            users_per_cohort: 1,
            prefix_tokens: 40_000,
            suffix_tokens: 64,
            requests_per_user: 1,
        };
        let mut stream = SharedPrefixFleetStream::new(spec, 1.0, 7);
        let mut cluster = Cluster::new(&EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            EngineKind::PagedAttention,
            60_000,
        ));
        let err = cluster.run_stream(&mut stream, 1.0).unwrap_err();
        assert!(matches!(err, RunError::WorkloadInfeasible { .. }));
    }

    /// The decode stage is strictly additive: on a trace where every request has
    /// `decode_tokens = 0`, the records are pinned to the prefill-only shape the
    /// engine has always produced — the first token *is* the completion, TTFT *is*
    /// the JCT, and no TPOT sample exists.  Together with the byte-identity tests
    /// above (which replay the same zero-decode traces through every path), this
    /// pins the degenerate path to the pre-decode engine.
    #[test]
    fn zero_decode_records_are_pinned_to_the_prefill_only_shape() {
        let (config, arrivals) = net_pressure_config(64 << 30);
        let report = Cluster::new(&config).run(&arrivals, 3.0).unwrap();
        assert!(!report.records.is_empty());
        for r in &report.records {
            assert_eq!(r.decode_tokens, 0);
            assert_eq!(r.first_token, r.completed);
            assert_eq!(r.ttft(), r.latency());
            assert!(r.tpot().is_none());
        }
        assert_eq!(report.decode_tokens(), 0);
        assert!(report.tpot_summary().is_none());
        assert_eq!(report.mean_ttft_secs(), report.mean_latency_secs());
    }

    /// A decode-enabled multi-turn conversation under the full stack the decode
    /// stage must not perturb: squeezed GPU pool, profile-sized CPU tier, shared
    /// network pool, cache-aware routing and mid-window propagation epochs.
    fn decode_conversation_scenario() -> (EngineConfig, workload::ConversationSpec) {
        let spec = workload::ConversationSpec {
            num_sessions: 10,
            turns_per_session: 3,
            system_prompt_tokens: 1_024,
            first_turn_input_tokens: 2_048,
            turn_input_tokens: 256,
            decode_tokens_per_turn: 96,
            think_time_ms: 2_000,
        };
        let mut config = EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            EngineKind::prefillonly_default(),
            spec.max_request_tokens(),
        );
        // Squeeze the KV pool below the working set of the open sessions so the
        // decode-grown chains actually cascade through the lower tiers.
        config.memory_utilization = 0.70;
        let config = config
            .with_cpu_offload(768 << 20)
            .with_net_kv(64 << 30)
            .with_routing(crate::routing::RoutingPolicyKind::CacheAware)
            .with_net_propagation_ms(2_000);
        (config, spec)
    }

    /// Tentpole acceptance: the determinism guarantee survives the decode stage.
    /// On a multi-turn conversation trace (every request decodes a reply that the
    /// next turn re-hits as cached prefix) with all three KV tiers active,
    /// cache-aware routing and propagation epochs, all four replay paths —
    /// threaded and sequential, materialised and streamed — produce byte-identical
    /// records, cache, offload and shared-pool state.
    #[test]
    fn decode_replay_is_byte_identical_across_all_four_replay_paths() {
        use workload::{conversation_trace, ConversationStream};
        let (config, spec) = decode_conversation_scenario();
        let qps = 1.0;
        let seed = 77;

        let trace = conversation_trace(&spec, qps, seed);
        let mut parallel = Cluster::new(&config);
        assert!(parallel.instances().len() > 1);
        let a = parallel.run_sorted(&trace, qps).unwrap();
        let mut sequential = Cluster::new(&config);
        let b = sequential.run_sorted_sequential(&trace, qps).unwrap();

        let mut streamed = Cluster::new(&config);
        let c = streamed
            .run_stream(&mut ConversationStream::new(spec, qps, seed), qps)
            .unwrap();
        let mut streamed_seq = Cluster::new(&config);
        let d = streamed_seq
            .run_stream_sequential(&mut ConversationStream::new(spec, qps, seed), qps)
            .unwrap();

        // Non-vacuity: the decode stage and every tier are genuinely exercised.
        assert_eq!(a.records.len() as u64, spec.num_requests());
        assert_eq!(
            a.decode_tokens(),
            spec.num_requests() * spec.decode_tokens_per_turn
        );
        assert!(a.tpot_summary().is_some(), "TPOT must be defined");
        assert!(
            a.mean_ttft_secs() < a.mean_latency_secs(),
            "decode must push completion past the first token"
        );
        for r in &a.records {
            assert_eq!(r.decode_tokens, spec.decode_tokens_per_turn);
            assert!(r.first_token < r.completed);
            assert!(r.ttft() < r.latency());
            assert!(r.tpot().is_some());
        }
        assert!(
            a.cache_hit_rate() > 0.0,
            "later turns must re-hit their session prefix"
        );
        assert!(
            a.offload.offloaded_blocks > 0,
            "the squeezed pool must spill decode-grown chains"
        );

        // Byte-identity across all four paths.
        for (label, other) in [("sequential", &b), ("streamed", &c), ("streamed seq", &d)] {
            assert_eq!(a.records, other.records, "{label} records diverged");
            assert_eq!(a.makespan, other.makespan, "{label} makespan diverged");
            assert_eq!(a.cache, other.cache, "{label} cache stats diverged");
            assert_eq!(a.offload, other.offload, "{label} offload stats diverged");
        }
        // The merged shared pools agree too, so a follow-up window starts identical.
        let pool = parallel.net_pool().unwrap();
        for other in [&sequential, &streamed, &streamed_seq] {
            let p = other.net_pool().unwrap();
            assert_eq!(pool.resident_blocks(), p.resident_blocks());
            assert_eq!(pool.generation(), p.generation());
        }
    }

    /// The adaptive epoch clock: halves under burst, doubles when near-idle, clamps
    /// to its bounds; the fixed policy never adapts.
    #[test]
    fn epoch_clock_adapts_within_bounds() {
        let policy = EpochLengthPolicy::Adaptive {
            target_arrivals: 10,
            min_ms: 250,
            max_ms: 4_000,
        };
        let ms = |m: u64| SimTime::ZERO + SimDuration::from_millis(m);
        let mut clock = EpochClock::new(1_000, policy);
        assert_eq!(clock.boundary(), ms(1_000));
        clock.advance(25); // burst: > 2×target halves 1000 → 500
        assert_eq!(clock.boundary(), ms(1_500));
        clock.advance(25); // 500 → 250
        assert_eq!(clock.boundary(), ms(1_750));
        clock.advance(100); // clamped at min_ms
        assert_eq!(clock.boundary(), ms(2_000));
        clock.advance(4); // near-idle: 2×count < target doubles 250 → 500
        assert_eq!(clock.boundary(), ms(2_500));
        clock.advance(10); // in band: unchanged
        assert_eq!(clock.boundary(), ms(3_000));
        clock.advance(0); // 500 → 1000
        assert_eq!(clock.boundary(), ms(4_000));
        clock.advance(0); // 1000 → 2000
        assert_eq!(clock.boundary(), ms(6_000));
        clock.advance(0); // 2000 → 4000
        assert_eq!(clock.boundary(), ms(10_000));
        clock.advance(0); // clamped at max_ms
        assert_eq!(clock.boundary(), ms(14_000));

        let mut fixed = EpochClock::new(1_000, EpochLengthPolicy::Fixed);
        fixed.advance(1_000_000);
        assert_eq!(fixed.boundary(), ms(2_000));
        fixed.advance(0);
        assert_eq!(fixed.boundary(), ms(3_000));
    }

    /// Unusable adaptive bounds are a typed error from [`Cluster::try_new`], never a
    /// clamp panic or a zero-length epoch spinning the clock forever.
    #[test]
    fn unusable_adaptive_epoch_bounds_are_a_config_error() {
        let zero_min = config(EngineKind::prefillonly_default()).with_adaptive_epochs(8, 0, 1_000);
        let err = Cluster::try_new(&zero_min).unwrap_err();
        assert_eq!(
            err,
            crate::config::ConfigError::AdaptiveEpochBounds {
                min_ms: 0,
                max_ms: 1_000
            }
        );
        assert!(err.to_string().contains("min_ms"));

        let inverted =
            config(EngineKind::prefillonly_default()).with_adaptive_epochs(8, 2_000, 1_000);
        assert!(matches!(
            Cluster::try_new(&inverted).unwrap_err(),
            crate::config::ConfigError::AdaptiveEpochBounds { .. }
        ));

        let tight = config(EngineKind::prefillonly_default()).with_adaptive_epochs(8, 500, 500);
        assert!(Cluster::try_new(&tight).is_ok());
    }

    #[test]
    fn prefix_caching_kicks_in_for_repeat_users() {
        let ds = small_post_rec_dataset();
        let arrivals = assign_poisson_arrivals(&ds, 2.0, &mut SimRng::seed_from_u64(6));
        let mut cluster = Cluster::new(&config(EngineKind::prefillonly_default()));
        let report = cluster.run(&arrivals, 2.0).unwrap();
        assert!(
            report.cache_hit_rate() > 0.5,
            "a user's 6 posts share a ~4k-token profile; hit rate was {:.2}",
            report.cache_hit_rate()
        );
    }

    /// Tentpole acceptance: the byte-identity guarantee survives elasticity.  With
    /// all three KV tiers active, propagation epochs cutting the window, and a
    /// membership schedule that drains one instance mid-trace (spilling its KV to
    /// the shared tier) and later joins a warm replacement, the threaded replay
    /// stays byte-identical to the sequential reference — and the streamed replay
    /// to the materialised one — under both sticky and cache-aware routing,
    /// across two consecutive windows.
    #[test]
    fn parallel_replay_is_byte_identical_to_sequential_across_membership_events() {
        use workload::MembershipEvent;
        let at = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
        for policy in [
            crate::routing::RoutingPolicyKind::StickyUser,
            crate::routing::RoutingPolicyKind::CacheAware,
        ] {
            let (config, arrivals) = net_pressure_config(64 << 30);
            let config = config.with_routing(policy).with_net_propagation_ms(2_000);
            let schedule = MembershipSchedule::new(vec![
                MembershipEvent {
                    at: at(2_500),
                    change: MembershipChange::Drain { spill: true },
                },
                MembershipEvent {
                    at: at(10_000),
                    change: MembershipChange::Join {
                        attached: true,
                        role: InstanceRole::Colocated,
                    },
                },
            ]);

            let mut parallel = Cluster::new(&config);
            let mut sequential = Cluster::new(&config);
            let mut streamed = Cluster::new(&config);
            parallel.schedule_membership(schedule.clone());
            sequential.schedule_membership(schedule.clone());
            streamed.schedule_membership(schedule.clone());
            let mut event_window_records = Vec::new();
            for window in 0..2 {
                let a = parallel.run(&arrivals, 3.0).unwrap();
                let b = sequential.run_sequential(&arrivals, 3.0).unwrap();
                let mut stream = SliceArrivalStream::from_sorted(&arrivals);
                let c = streamed.run_stream(&mut stream, 3.0).unwrap();
                assert_eq!(a.records, b.records, "{policy:?} window {window}");
                assert_eq!(a.makespan, b.makespan, "{policy:?} window {window}");
                assert_eq!(a.cache, b.cache, "{policy:?} window {window}");
                assert_eq!(a.offload, b.offload, "{policy:?} window {window}");
                assert_eq!(a.records, c.records, "{policy:?} window {window} streamed");
                assert_eq!(a.cache, c.cache, "{policy:?} window {window} streamed");
                assert_eq!(a.offload, c.offload, "{policy:?} window {window} streamed");
                if window == 0 {
                    event_window_records = a.records.clone();
                }
            }

            // The schedule actually played out — identically on every path.
            for cluster in [&parallel, &sequential, &streamed] {
                let log = cluster.membership_log();
                assert_eq!(log.len(), 2, "{policy:?}: both events applied");
                assert!(
                    matches!(log[0].change, MembershipChange::Drain { spill: true }),
                    "{policy:?}"
                );
                assert!(
                    matches!(log[1].change, MembershipChange::Join { attached: true, .. }),
                    "{policy:?}"
                );
                let drains = cluster.drain_records();
                assert_eq!(drains.len(), 1, "{policy:?}: the drained slot retired");
                assert_eq!(drains[0].slot, log[0].slot, "{policy:?}");
                assert!(
                    drains[0].spill.gpu_blocks > 0,
                    "{policy:?}: the leaver must hand its GPU-resident KV to the net tier"
                );
                assert_eq!(cluster.num_active_instances(), 2, "{policy:?}");
                // No arrival routed after the drain ran on the drained slot.
                let applied = log[0].at;
                let drained = log[0].slot;
                assert!(
                    cluster.drain_records()[0].retired_at >= applied,
                    "{policy:?}"
                );
                // The join may reuse the retired slot, so the no-misroute window
                // runs from the drain's application to the join's.
                let rejoined = log[1].at;
                assert!(
                    event_window_records
                        .iter()
                        .filter(|r| r.arrival >= applied && r.arrival < rejoined)
                        .all(|r| r.instance != drained),
                    "{policy:?}: no post-drain arrival may run on the drained slot"
                );
            }
            assert_eq!(
                parallel.membership_log(),
                sequential.membership_log(),
                "{policy:?}"
            );
            assert_eq!(
                parallel.drain_records(),
                sequential.drain_records(),
                "{policy:?}"
            );
            let pa = parallel.net_pool().unwrap();
            let pb = sequential.net_pool().unwrap();
            assert_eq!(pa.resident_blocks(), pb.resident_blocks(), "{policy:?}");
            assert_eq!(pa.generation(), pb.generation(), "{policy:?}");
        }
    }

    /// Regression (the sticky fast-path bug): `user_seq % n` arithmetic silently
    /// misroutes once `n` changes mid-trace, so a membership event must retire
    /// both sticky fast paths permanently.  Pinned by replaying a fully stamped
    /// trace across a drain and requiring record-identity with the same trace
    /// stripped of every stamp (the slow path), plus the direct property that no
    /// post-drain arrival lands on the drained slot.
    #[test]
    fn membership_retires_the_sticky_fast_paths_record_identical_to_the_slow_path() {
        use workload::MembershipEvent;
        let ds = small_post_rec_dataset();
        let arrivals = assign_poisson_arrivals(&ds, 5.0, &mut SimRng::seed_from_u64(2));
        assert!(arrivals.iter().all(|a| a.sticky.is_some()));
        let mut unstamped = arrivals.clone();
        for arrival in &mut unstamped {
            arrival.sticky = None;
        }
        let schedule = MembershipSchedule::new(vec![MembershipEvent {
            at: SimTime::ZERO + SimDuration::from_millis(2_000),
            change: MembershipChange::Drain { spill: false },
        }]);

        let config = config(EngineKind::prefillonly_default());
        let mut fast = Cluster::new(&config);
        fast.schedule_membership(schedule.clone());
        let a = fast.run(&arrivals, 5.0).unwrap();
        let mut slow = Cluster::new(&config);
        slow.schedule_membership(schedule);
        let b = slow.run(&unstamped, 5.0).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.cache, b.cache);
        assert_eq!(a.makespan, b.makespan);

        // The drain actually bit mid-trace, and nothing was misrouted onto the
        // drained slot afterwards (the bug would keep sending `user_seq % 2 == 1`
        // users there).
        let log = fast.membership_log();
        assert_eq!(log.len(), 1);
        let (applied, drained) = (log[0].at, log[0].slot);
        let post_drain: Vec<_> = a.records.iter().filter(|r| r.arrival >= applied).collect();
        assert!(
            !post_drain.is_empty(),
            "the trace must continue past the drain for the pin to mean anything"
        );
        assert!(
            post_drain.iter().all(|r| r.instance != drained),
            "post-drain arrivals must never route to the drained slot"
        );
        assert!(
            a.records
                .iter()
                .any(|r| r.arrival >= applied && r.instance != drained),
            "survivors keep serving"
        );
    }

    /// The autoscaler is deterministic: evaluated at epoch boundaries from
    /// completed-epoch load only, so the threaded replay scales (and replays)
    /// byte-identically to the sequential reference, and every derived event is
    /// logged as autoscaled.
    #[test]
    fn autoscaler_scales_up_deterministically_at_epoch_boundaries() {
        let (config, arrivals) = net_pressure_config(64 << 30);
        let config = config.with_net_propagation_ms(2_000).with_autoscaler(
            crate::config::AutoscalerPolicy {
                scale_up_outstanding_tokens: 1,
                scale_down_outstanding_tokens: 0,
                cooldown_epochs: 1,
                min_instances: 1,
                max_instances: 4,
            },
        );
        let mut parallel = Cluster::new(&config);
        let mut sequential = Cluster::new(&config);
        let a = parallel.run(&arrivals, 3.0).unwrap();
        let b = sequential.run_sequential(&arrivals, 3.0).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.cache, b.cache);
        assert_eq!(a.offload, b.offload);
        assert_eq!(parallel.membership_log(), sequential.membership_log());
        let log = parallel.membership_log();
        assert!(
            !log.is_empty(),
            "a squeezed two-instance fleet under pressure must trigger a scale-up"
        );
        assert!(log.iter().all(|applied| applied.autoscaled));
        assert!(log.iter().any(|applied| matches!(
            applied.change,
            MembershipChange::Join { attached: true, .. }
        )));
        assert!(parallel.num_active_instances() > 2);
        assert!(parallel.num_active_instances() <= 4);
    }

    /// The disaggregated twin of [`decode_conversation_scenario`]: slot 0 runs the
    /// prefill phase only, slot 1 the decode phase only, with the same squeezed
    /// tiers, cache-aware routing and propagation epochs.
    fn disaggregated_conversation_scenario() -> (EngineConfig, workload::ConversationSpec) {
        let (config, spec) = decode_conversation_scenario();
        (
            config.with_roles(vec![InstanceRole::Prefill, InstanceRole::Decode]),
            spec,
        )
    }

    /// Tentpole acceptance: the determinism guarantee survives disaggregation.
    /// With slot 0 prefill-only and slot 1 decode-only — every request prefills on
    /// one slot, crosses the fabric as a KV handoff and decodes on the other —
    /// all four replay paths produce byte-identical records, cache, offload and
    /// handoff accounting.
    #[test]
    fn disaggregated_replay_is_byte_identical_across_all_four_replay_paths() {
        use workload::{conversation_trace, ConversationStream};
        let (config, spec) = disaggregated_conversation_scenario();
        let qps = 1.0;
        let seed = 77;

        let trace = conversation_trace(&spec, qps, seed);
        let mut parallel = Cluster::new(&config);
        assert!(parallel.instances().len() > 1);
        let a = parallel.run_sorted(&trace, qps).unwrap();
        let mut sequential = Cluster::new(&config);
        let b = sequential.run_sorted_sequential(&trace, qps).unwrap();
        let mut streamed = Cluster::new(&config);
        let c = streamed
            .run_stream(&mut ConversationStream::new(spec, qps, seed), qps)
            .unwrap();
        let mut streamed_seq = Cluster::new(&config);
        let d = streamed_seq
            .run_stream_sequential(&mut ConversationStream::new(spec, qps, seed), qps)
            .unwrap();

        // Non-vacuity: every request prefilled on slot 0, decoded on slot 1, and
        // paid a real fabric transfer.
        assert_eq!(a.records.len() as u64, spec.num_requests());
        assert_eq!(a.handed_off_requests(), spec.num_requests());
        assert!(a.handoff_bytes() > 0);
        for r in &a.records {
            assert_eq!(r.instance, 0, "arrivals must route to the prefill slot");
            assert_eq!(r.decode_instance, Some(1));
            assert!(r.handoff_bytes > 0);
            assert!(r.first_token < r.completed);
            assert!(r.tpot().is_some());
        }

        for (label, other) in [("sequential", &b), ("streamed", &c), ("streamed seq", &d)] {
            assert_eq!(a.records, other.records, "{label} records diverged");
            assert_eq!(a.makespan, other.makespan, "{label} makespan diverged");
            assert_eq!(a.cache, other.cache, "{label} cache stats diverged");
            assert_eq!(a.offload, other.offload, "{label} offload stats diverged");
        }
    }

    /// The handoff shadow model: every decode-bearing request of a disaggregated
    /// replay appears exactly once, prefilled on a prefill-capable slot and decoded
    /// on a decode-capable one, and the fabric ledger's cumulative totals reconcile
    /// with both the per-record bytes and the [`OffloadStats`] aggregation.
    #[test]
    fn handoff_ledger_reconciles_with_records_and_offload_totals() {
        use workload::conversation_trace;
        let (config, spec) = disaggregated_conversation_scenario();
        let trace = conversation_trace(&spec, 1.0, 21);
        let mut cluster = Cluster::new(&config);
        let report = cluster.run_sorted(&trace, 1.0).unwrap();

        assert_eq!(report.records.len() as u64, spec.num_requests());
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.request_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len() as u64,
            spec.num_requests(),
            "every handed-off chain decodes exactly once"
        );
        for r in &report.records {
            assert!(cluster.instances()[r.instance].role().can_prefill());
            let decode = r.decode_instance.expect("every request hands off");
            assert!(cluster.instances()[decode].role().can_decode());
            assert!(r.handoff_bytes > 0);
        }

        let record_bytes: u64 = report.records.iter().map(|r| r.handoff_bytes).sum();
        assert_eq!(report.offload.handoff_records, spec.num_requests());
        assert_eq!(report.offload.handoff_bytes, record_bytes);
        assert_eq!(report.handoff_bytes(), record_bytes);
        assert_eq!(report.handed_off_requests(), spec.num_requests());
    }

    /// The per-window time-series export: `track_window_metrics` samples every
    /// epoch boundary (per-slot gauges with roles, fleet counters), the final
    /// window accounts every handoff, and the export is inert when untracked.
    #[test]
    fn window_metrics_sample_the_fleet_at_epoch_boundaries() {
        use workload::conversation_trace;
        let (config, spec) = disaggregated_conversation_scenario();
        let trace = conversation_trace(&spec, 1.0, 21);

        let untracked = Cluster::new(&config).run_sorted(&trace, 1.0).unwrap();
        assert!(untracked.windows.is_empty());
        assert_eq!(untracked.prometheus_window_series(), "");

        let config = config.with_window_metrics();
        let report = Cluster::new(&config).run_sorted(&trace, 1.0).unwrap();
        assert_eq!(
            report.records, untracked.records,
            "observation must not perturb the replay"
        );
        assert!(!report.windows.is_empty());
        for (i, window) in report.windows.iter().enumerate() {
            assert_eq!(window.window, i as u64);
            assert_eq!(window.slots.len(), 2);
            assert_eq!(window.slots[0].role, InstanceRole::Prefill);
            assert_eq!(window.slots[1].role, InstanceRole::Decode);
        }
        let last = report.windows.last().expect("checked non-empty");
        assert_eq!(last.handoff_records, spec.num_requests());
        assert_eq!(last.handoff_bytes, report.offload.handoff_bytes);
        let prom = report.prometheus_window_series();
        assert!(prom.contains("prefillonly_handoff_records_total"));
        assert!(prom.contains("role=\"decode\""));
    }
}

//! Request and response types of the prefill-only serving API.
//!
//! The real PrefillOnly exposes an OpenAI-compatible HTTP endpoint; the reproduction
//! exposes the same information as plain structs.  A prefill-only request carries its
//! prompt tokens plus the list of *acceptable* output tokens (§2.3: "pass a list of
//! acceptable tokens to the LLM engine so that the LLM engine only samples output from
//! this list"), and the response carries one probability per acceptable token.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

use crate::routing::RoutingReason;

/// A prefill-only inference request.
#[derive(Debug, Clone)]
pub struct PrefillRequest {
    /// Engine-wide unique request id.
    pub id: u64,
    /// The user (or tenant) this request belongs to; drives user-id routing.
    pub user_id: u64,
    /// Full token sequence: the prompt followed by the `decode_tokens` trailing
    /// tokens the engine produces one iteration at a time (trace-replay style —
    /// the reply content is part of the trace, the engine models *when* each
    /// token appears, not *which*).
    pub tokens: Arc<Vec<u32>>,
    /// Of `tokens`, how many are decoded iteratively rather than prefilled.
    /// 0 means a pure prefill-only request, which behaves exactly as before the
    /// decode stage existed.
    pub decode_tokens: u64,
    /// The acceptable single-token outputs (e.g. `["Yes", "No"]`).
    pub allowed_outputs: Vec<String>,
    /// When the request entered the system.
    pub arrival: SimTime,
    /// Why the routing layer placed the request on its instance
    /// ([`RoutingReason::Direct`] when no policy was involved).
    pub routing: RoutingReason,
}

impl PrefillRequest {
    /// Total number of tokens the request pins in KV once complete: the prompt
    /// plus the decoded reply.
    pub fn num_tokens(&self) -> u64 {
        self.tokens.len() as u64
    }

    /// Number of prompt tokens (everything that is prefilled in one pass).
    pub fn prompt_tokens(&self) -> u64 {
        self.num_tokens() - self.decode_tokens
    }
}

/// Probability assigned to one acceptable output token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenScore {
    /// The output token text.
    pub token: String,
    /// Its probability among the acceptable tokens (the scores of a response sum to 1).
    pub probability: f64,
}

/// The engine's answer to a prefill-only request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefillResponse {
    /// Id of the request this answers.
    pub request_id: u64,
    /// One probability per acceptable output token, in the order they were supplied.
    pub scores: Vec<TokenScore>,
    /// End-to-end latency (queueing + execution) in virtual time.
    pub latency: SimDuration,
    /// Prompt tokens that were served from the prefix cache.
    pub cached_tokens: u64,
}

impl PrefillResponse {
    /// The highest-probability output token.
    pub fn top_token(&self) -> Option<&TokenScore> {
        self.scores.iter().max_by(|a, b| {
            a.probability
                .partial_cmp(&b.probability)
                .expect("probabilities are never NaN")
        })
    }
}

/// Deterministic pseudo-probabilities over the acceptable tokens.
///
/// The analytical GPU never computes real logits, so the reproduction derives a stable
/// pseudo-score from the prompt content: the same prompt always yields the same
/// distribution, different prompts yield different ones.  This keeps the end-to-end API
/// shape of the paper's system (a recommendation score per candidate document) without
/// pretending to model quality.
pub fn pseudo_scores(tokens: &[u32], allowed_outputs: &[String]) -> Vec<TokenScore> {
    if allowed_outputs.is_empty() {
        return Vec::new();
    }
    // FNV-1a over the prompt, decorrelated per output index.
    let mut weights = Vec::with_capacity(allowed_outputs.len());
    for (idx, output) in allowed_outputs.iter().enumerate() {
        let mut state = 0xcbf29ce484222325u64 ^ (idx as u64).wrapping_mul(0x9e3779b97f4a7c15);
        for &t in tokens {
            state ^= u64::from(t);
            state = state.wrapping_mul(0x100000001b3);
        }
        for b in output.as_bytes() {
            state ^= u64::from(*b);
            state = state.wrapping_mul(0x100000001b3);
        }
        // Map to (0, 1) and soften so no option ever gets probability ~0.
        let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
        weights.push(0.05 + unit);
    }
    let total: f64 = weights.iter().sum();
    allowed_outputs
        .iter()
        .zip(weights)
        .map(|(token, w)| TokenScore {
            token: token.clone(),
            probability: w / total,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_form_a_distribution() {
        let tokens: Vec<u32> = (0..1000).collect();
        let scores = pseudo_scores(&tokens, &["Yes".into(), "No".into()]);
        assert_eq!(scores.len(), 2);
        let sum: f64 = scores.iter().map(|s| s.probability).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(scores.iter().all(|s| s.probability > 0.0));
    }

    #[test]
    fn scores_are_deterministic_and_content_sensitive() {
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (1..101).collect();
        let outputs = vec!["Yes".to_string(), "No".to_string()];
        assert_eq!(pseudo_scores(&a, &outputs), pseudo_scores(&a, &outputs));
        assert_ne!(pseudo_scores(&a, &outputs), pseudo_scores(&b, &outputs));
    }

    #[test]
    fn empty_outputs_yield_empty_scores() {
        assert!(pseudo_scores(&[1, 2, 3], &[]).is_empty());
    }

    #[test]
    fn top_token_picks_the_argmax() {
        let response = PrefillResponse {
            request_id: 1,
            scores: vec![
                TokenScore {
                    token: "Yes".into(),
                    probability: 0.3,
                },
                TokenScore {
                    token: "No".into(),
                    probability: 0.7,
                },
            ],
            latency: SimDuration::from_millis(10),
            cached_tokens: 0,
        };
        assert_eq!(response.top_token().unwrap().token, "No");
    }

    #[test]
    fn request_token_count() {
        let req = PrefillRequest {
            id: 1,
            user_id: 2,
            tokens: Arc::new(vec![1, 2, 3]),
            decode_tokens: 0,
            allowed_outputs: vec!["Yes".into()],
            arrival: SimTime::ZERO,
            routing: RoutingReason::Direct,
        };
        assert_eq!(req.num_tokens(), 3);
        assert_eq!(req.prompt_tokens(), 3);
        let decode = PrefillRequest {
            decode_tokens: 2,
            ..req
        };
        assert_eq!(decode.num_tokens(), 3);
        assert_eq!(decode.prompt_tokens(), 1);
    }
}

//! # PrefillOnly — an inference engine for prefill-only LLM workloads
//!
//! This crate is the top of the reproduction stack: it assembles the analytical GPU
//! model (`prefillonly-gpu`), the model shape arithmetic (`prefillonly-model`), the
//! paged KV-cache manager (`prefillonly-kvcache`), the execution strategies
//! (`prefillonly-executor`) and the JCT-aware scheduler (`prefillonly-scheduler`) into
//! a complete serving engine that can be driven either request-by-request (the
//! [`PrefillOnlyClient`] facade used by the examples) or by replaying a whole workload
//! trace under a Poisson arrival process (the [`Cluster`] simulator used by every
//! figure of the evaluation).  The workspace-wide crate map and request lifecycle
//! are documented in `ARCHITECTURE.md` at the repository root.
//!
//! ## The five evaluated systems
//!
//! [`EngineKind`] enumerates PrefillOnly and the four baselines of §7.1:
//!
//! | Engine | Prefill strategy | Scheduler | GPUs per instance |
//! |---|---|---|---|
//! | `PrefillOnly` | hybrid prefilling + suffix KV discarding | SRJF + continuous JCT calibration (λ) | 1 |
//! | `PagedAttention` | full prefill, full KV residency | FCFS | 1 |
//! | `ChunkedPrefill` | chunked prefill (chunk 512) | FCFS | 1 |
//! | `TensorParallel` | full prefill sharded over 2 GPUs | FCFS | 2 |
//! | `PipelineParallel` | full prefill split into 2 stages | FCFS | 2 |
//!
//! Single-GPU engines are replicated once per GPU and fronted by the pluggable
//! routing layer ([`EngineConfig::routing`], default: the sticky user-id routing of
//! §7.1; [`RoutingPolicyKind::CacheAware`] routes to the deepest modelled three-tier
//! prefix hit instead); multi-GPU engines run as one instance spanning both GPUs.
//! Routing decisions are taken per replay window against a window-start snapshot, so
//! the parallel replay stays byte-identical under every policy — see
//! `ARCHITECTURE.md` ("Routing layer").
//!
//! ## Hierarchical KV tiers
//!
//! Beyond the published system, [`EngineConfig`] can grow the KV cache downward:
//! `cpu_kv_capacity_bytes > 0` adds a per-instance CPU tier (GPU eviction victims
//! spill over [`gpu::HostLink`] instead of being discarded), and
//! `net_kv_capacity_bytes > 0` adds a **cluster-shared network tier** below that —
//! CPU eviction victims that pass the single-use spill filter become reloadable by
//! *every* instance of the deployment over [`gpu::NetLink`].  Whether a reloadable
//! segment is fetched or recomputed is a per-request decision
//! ([`ReloadPolicyKind::Modeled`]) comparing the modelled transfer time at the
//! observed hit depth against the modelled recompute saving.  Zero capacities are
//! bit-identical to the published discard-on-evict engine.
//!
//! The full cost model — tier table, spill cascade and filter, the
//! reload-vs-recompute inequality, link charging order, scheduling discounts, and
//! the snapshot-merge sharing semantics of [`Cluster`]'s network pool — lives in
//! `ARCHITECTURE.md` ("Three-tier KV cost model"), next to the performance model of
//! the simulator's own hot paths ("Performance model"); both are enforced by the
//! determinism and shadow-model suites listed there.
//!
//! ## Quick start
//!
//! ```
//! use prefillonly::{EngineConfig, EngineKind, PrefillOnlyClient};
//! use gpu::HardwareSetup;
//! use model::ModelPreset;
//!
//! let config = EngineConfig::new(
//!     ModelPreset::Llama31_8b,
//!     HardwareSetup::l4_pair(),
//!     EngineKind::prefillonly_default(),
//!     20_000,
//! );
//! let mut client = PrefillOnlyClient::new(&config);
//! let prompt: Vec<u32> = (0..4_000).collect();
//! let response = client.score(&prompt, &["Yes", "No"]);
//! assert_eq!(response.scores.len(), 2);
//! assert!(response.latency.as_secs_f64() > 0.0);
//! ```

mod baselines;
mod client;
mod cluster;
mod config;
mod instance;
mod report;
mod request;
mod routing;

pub use baselines::{all_engine_kinds, engine_display_name};
pub use client::PrefillOnlyClient;
pub use cluster::{AppliedMembership, Cluster, DrainRecord, RoutingScratch, RunError};
pub use config::{
    AutoscalerPolicy, ConfigError, EngineConfig, EngineKind, EpochLengthPolicy, ReloadPolicyKind,
};
pub use instance::{EngineInstance, HandoffAdmission, InstanceProfile, InstanceStats, KvHandoff};
pub use report::{RequestRecord, RoutingJct, RunReport, SlotWindow, WindowMetrics};
pub use request::{PrefillRequest, PrefillResponse, TokenScore};
pub use routing::{
    InstanceLoad, RouteQuery, RouterSnapshot, RoutingDecision, RoutingError, RoutingPolicy,
    RoutingPolicyKind, RoutingReason, UserRouter,
};

//! # PrefillOnly — an inference engine for prefill-only LLM workloads
//!
//! This crate is the top of the reproduction stack: it assembles the analytical GPU
//! model (`prefillonly-gpu`), the model shape arithmetic (`prefillonly-model`), the
//! paged KV-cache manager (`prefillonly-kvcache`), the execution strategies
//! (`prefillonly-executor`) and the JCT-aware scheduler (`prefillonly-scheduler`) into
//! a complete serving engine that can be driven either request-by-request (the
//! [`PrefillOnlyClient`] facade used by the examples) or by replaying a whole workload
//! trace under a Poisson arrival process (the [`Cluster`] simulator used by every
//! figure of the evaluation).
//!
//! ## The five evaluated systems
//!
//! [`EngineKind`] enumerates PrefillOnly and the four baselines of §7.1:
//!
//! | Engine | Prefill strategy | Scheduler | GPUs per instance |
//! |---|---|---|---|
//! | `PrefillOnly` | hybrid prefilling + suffix KV discarding | SRJF + continuous JCT calibration (λ) | 1 |
//! | `PagedAttention` | full prefill, full KV residency | FCFS | 1 |
//! | `ChunkedPrefill` | chunked prefill (chunk 512) | FCFS | 1 |
//! | `TensorParallel` | full prefill sharded over 2 GPUs | FCFS | 2 |
//! | `PipelineParallel` | full prefill split into 2 stages | FCFS | 2 |
//!
//! Single-GPU engines are replicated once per GPU and fronted by the user-id router of
//! §7.1; multi-GPU engines run as one instance spanning both GPUs.
//!
//! ## Performance model
//!
//! The simulator is sized for production-scale traces (millions of requests, deep
//! queues), so its three hot paths are kept asymptotically tight.  With `Q` = waiting
//! requests, `C` = chain length in blocks, `n` = cached blocks and `k` = eviction
//! batch size:
//!
//! | Hot path | Cost | Mechanism |
//! |---|---|---|
//! | Scheduling step (Algorithm 1) | O(Q) scoring, O(1) probe per request while the cache is unchanged | [`kvcache::ProbeCache`] memoises each waiting request's per-tier hit depths, keyed by the KV manager's GPU *and* CPU generation counters; commits resume the walk from the old depth, only evictions force a full O(C) re-walk |
//! | KV eviction / spill | O(k log n) per batch | an ordered LRU index (`BTreeSet` over `(last_used, hash)`) maintained on touch/commit/evict replaces the seed's full scan + sort; with offload enabled each victim spills into the [`kvcache::CpuKvPool`]'s own O(log n) LRU index |
//! | Queue admission | O(1) removal | [`scheduler::WaitingQueue`] is an unordered bag (`swap_remove`); policies order requests themselves |
//! | Instance profile run | O(1) per probe | [`executor::Executor`] memoises the per-layer cost curves (activation byte rates, per-stage layer split, FLOP constants) at construction, so the MIL binary search and the JCT grid are pure arithmetic — pinned bit-identical to the unmemoised model by regression tests |
//! | Cluster replay | one thread per instance | user-id routing makes instance timelines independent, so [`Cluster::run`] simulates them in parallel and merges records deterministically — byte-identical to [`Cluster::run_sequential`] |
//!
//! Medians for these paths are tracked in `BENCH_baseline.json` (regenerate with
//! `cargo run --release --bin bench_baseline`).
//!
//! ## Tiered-cache cost model (§9 extension)
//!
//! With `cpu_kv_capacity_bytes > 0` in [`EngineConfig`], each instance's KV manager
//! grows a CPU tier: eviction victims *spill* to host memory instead of being
//! discarded, and a request whose prefix misses the GPU cache but hits the CPU tier
//! *rehydrates* those blocks over the host link.  The engine charges costs as
//! follows:
//!
//! * **Spill (device→host)** is free on the request path: offload writes are
//!   asynchronous DMA overlapped with compute, as in LMCache / SGLang's hierarchical
//!   cache.
//! * **Reload (host→device)** costs [`gpu::HostLink::transfer_time`] — launch latency
//!   plus `reloaded_bytes / link bandwidth` — serialised *before* the first pipeline
//!   stage's compute, because attention over the reloaded prefix needs its KV
//!   device-resident.  Reloaded tokens are otherwise cache hits: only the remaining
//!   uncached tokens are forwarded.
//! * **Scheduling** folds the trade-off into the calibrated JCT probe: a CPU-tier
//!   token hit counts as `1 − reload/recompute` of a GPU hit (both rates derived from
//!   the fitted estimator and the link model), so SRJF ranks CPU-warm requests
//!   exactly as far ahead as the transfer actually makes them — and ignores the tier
//!   entirely where reloading is no cheaper than recomputing.
//!
//! For the evaluated tiers reloading is roughly 20-40× cheaper per token than
//! recomputation (e.g. Llama-8B on PCIe 4: ~5.5 µs/token transferred vs ~150 µs/token
//! prefilled on an L4), so a prefix-heavy trace under pool pressure sees strictly
//! lower mean JCT with the CPU tier than with discard-on-evict — enforced end to end
//! by `hierarchical_kv_cache_reduces_jct_on_prefix_heavy_traces`, with determinism
//! guaranteed by `parallel_run_is_identical_to_sequential_with_offload`.
//!
//! ## Quick start
//!
//! ```
//! use prefillonly::{EngineConfig, EngineKind, PrefillOnlyClient};
//! use gpu::HardwareSetup;
//! use model::ModelPreset;
//!
//! let config = EngineConfig::new(
//!     ModelPreset::Llama31_8b,
//!     HardwareSetup::l4_pair(),
//!     EngineKind::prefillonly_default(),
//!     20_000,
//! );
//! let mut client = PrefillOnlyClient::new(&config);
//! let prompt: Vec<u32> = (0..4_000).collect();
//! let response = client.score(&prompt, &["Yes", "No"]);
//! assert_eq!(response.scores.len(), 2);
//! assert!(response.latency.as_secs_f64() > 0.0);
//! ```

mod baselines;
mod client;
mod cluster;
mod config;
mod instance;
mod report;
mod request;
mod routing;

pub use baselines::{all_engine_kinds, engine_display_name};
pub use client::PrefillOnlyClient;
pub use cluster::{Cluster, RunError};
pub use config::{EngineConfig, EngineKind};
pub use instance::{EngineInstance, InstanceStats};
pub use report::{RequestRecord, RunReport};
pub use request::{PrefillRequest, PrefillResponse, TokenScore};
pub use routing::UserRouter;

//! Engine configuration.

use serde::{Deserialize, Serialize};

use executor::{ExecutorConfig, Parallelism, PrefillStrategy};
use gpu::{HardwareSetup, LinkKind, NetLinkKind};
use model::ModelPreset;
use scheduler::PolicyKind;
use workload::InstanceRole;

use crate::routing::RoutingPolicyKind;

/// Why a configuration cannot be deployed, surfaced by [`EngineConfig::validate`]
/// (the validation boundary [`crate::Cluster::try_new`] checks before building
/// anything).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The hardware setup yields zero engine instances, so no router can be built.
    NoInstances,
    /// A warm network pool was supplied but the deployment's network tier is
    /// disabled (`net_kv_capacity_bytes` is 0), so nothing could absorb it.
    WarmPoolNeedsNetTier,
    /// A warm network pool was built for a different KV block geometry than this
    /// deployment profiles, so its entries cannot be addressed.
    WarmPoolGeometryMismatch {
        /// Bytes of full KV per block the deployment's profile derives.
        deployment_block_bytes: u64,
        /// Bytes of full KV per block the supplied pool was built with.
        pool_block_bytes: u64,
    },
    /// Adaptive epoch bounds are unusable: `min_ms` must be at least 1 (a
    /// zero-length epoch would never advance simulated time) and no greater than
    /// `max_ms`.
    AdaptiveEpochBounds {
        /// The configured lower bound.
        min_ms: u64,
        /// The configured upper bound.
        max_ms: u64,
    },
    /// The autoscaler policy is unusable: the fleet bounds must satisfy
    /// `1 <= min_instances <= max_instances` and the load thresholds must leave a
    /// hysteresis band (`scale_down_outstanding_tokens` strictly below
    /// `scale_up_outstanding_tokens`), or the fleet would oscillate every epoch.
    AutoscalerBounds {
        /// The configured fleet floor.
        min_instances: usize,
        /// The configured fleet ceiling.
        max_instances: usize,
        /// The configured scale-up threshold.
        scale_up_outstanding_tokens: u64,
        /// The configured scale-down threshold.
        scale_down_outstanding_tokens: u64,
    },
    /// An explicit role vector was supplied but its length does not match the
    /// deployment's instance count, so slots cannot be assigned roles.
    RoleCountMismatch {
        /// Roles supplied via [`EngineConfig::with_roles`].
        roles: usize,
        /// Instances the hardware setup and engine kind yield.
        instances: usize,
    },
    /// No slot in the configured fleet can accept arrivals (every role is
    /// `Decode`), so the router would have nowhere to place any request.
    NoPrefillCapableSlot,
    /// The fleet has dedicated `Prefill` slots but no slot that can decode, so
    /// every KV handoff would wait forever for an admitting instance.
    NoDecodeCapableSlot,
    /// A disaggregated fleet (dedicated `Prefill`/`Decode` roles) moves every
    /// finished prefix across the network fabric, which requires an enabled
    /// `net_link` (any preset other than [`NetLinkKind::Disabled`]).
    DisaggregationNeedsNetLink,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoInstances => write!(
                f,
                "the deployment has zero engine instances (hardware setup without GPUs?)"
            ),
            ConfigError::WarmPoolNeedsNetTier => write!(
                f,
                "a warm net pool needs net_kv_capacity_bytes > 0 on the joining deployment"
            ),
            ConfigError::WarmPoolGeometryMismatch {
                deployment_block_bytes,
                pool_block_bytes,
            } => write!(
                f,
                "warm pool must match the deployment's KV block geometry \
                 ({pool_block_bytes} B/block supplied, {deployment_block_bytes} B/block profiled)"
            ),
            ConfigError::AdaptiveEpochBounds { min_ms, max_ms } => write!(
                f,
                "adaptive epoch bounds need 1 <= min_ms <= max_ms, got min {min_ms} max {max_ms}"
            ),
            ConfigError::AutoscalerBounds {
                min_instances,
                max_instances,
                scale_up_outstanding_tokens,
                scale_down_outstanding_tokens,
            } => write!(
                f,
                "autoscaler needs 1 <= min_instances <= max_instances and \
                 scale_down < scale_up, got instances [{min_instances}, {max_instances}] \
                 thresholds down {scale_down_outstanding_tokens} / up {scale_up_outstanding_tokens}"
            ),
            ConfigError::RoleCountMismatch { roles, instances } => write!(
                f,
                "role vector length must match the instance count \
                 ({roles} roles supplied, {instances} instances deployed)"
            ),
            ConfigError::NoPrefillCapableSlot => write!(
                f,
                "every slot is Decode-only, so no instance could ever accept an arrival"
            ),
            ConfigError::NoDecodeCapableSlot => write!(
                f,
                "the fleet has Prefill-only slots but nothing that can decode, \
                 so every KV handoff would wait forever"
            ),
            ConfigError::DisaggregationNeedsNetLink => write!(
                f,
                "a disaggregated prefill/decode fleet hands KV across the network \
                 fabric and cannot run with net_link disabled"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// How the engine decides whether to reload a reloadable KV segment (CPU- or
/// network-resident continuation of the GPU-cached prefix) or recompute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReloadPolicyKind {
    /// Per-request decision (the default): compare the modelled link transfer time at
    /// the observed hit depth against the modelled recompute saving, per tier.  On
    /// hosts where a tier's link is slower than recomputation for a given segment,
    /// the segment is recomputed.
    Modeled,
    /// Always reload whatever is present and resident-able — the two-tier engines'
    /// historical behaviour, kept as an ablation/regression reference.
    Always,
}

/// How propagation-epoch boundaries are laid out within a replay window.
///
/// Epoch boundaries must be a pure function of the configuration and the trace
/// prefix already replayed — never of wall-clock or simulation-internal state —
/// so that parallel and sequential replay cut the window identically and stay
/// byte-identical.  Both variants satisfy this: `Fixed` ignores the trace
/// entirely, `Adaptive` looks only at the *count* of arrivals in completed
/// epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpochLengthPolicy {
    /// Every epoch is exactly `net_propagation_ms` long (the default, and the
    /// fixed-boundary behaviour of earlier releases, byte for byte).
    Fixed,
    /// Epoch lengths track arrival density: starting from `net_propagation_ms`
    /// (clamped into `[min_ms, max_ms]`), an epoch that saw more than
    /// `2 * target_arrivals` arrivals halves the next epoch's length (routing
    /// snapshots refresh faster under burst) and an epoch that saw fewer than
    /// `target_arrivals / 2` doubles it (idle stretches stop paying a barrier +
    /// snapshot merge every `net_propagation_ms` of simulated silence).  Lengths
    /// never leave `[min_ms, max_ms]`.
    ///
    /// Note the propagation *latency* contract weakens when an epoch runs longer
    /// than `net_propagation_ms`: a spill still surfaces at the next boundary,
    /// which an idle-stretched epoch can push out to `max_ms` after publish.
    /// That trade — bounded-staleness visibility for O(arrivals) instead of
    /// O(window span) barrier overhead — is the point of the policy, and it only
    /// ever delays sharing on traces too idle to contend for it.
    Adaptive {
        /// Per-epoch arrival count the controller steers towards.
        target_arrivals: u64,
        /// Shortest epoch the controller may shrink to, in milliseconds (also the
        /// floor under burst; must be ≥ 1 to make progress).
        min_ms: u64,
        /// Longest epoch the controller may stretch to, in milliseconds.
        max_ms: u64,
    },
}

/// Threshold/hysteresis autoscaler over the router's modelled
/// [`InstanceLoad`](crate::InstanceLoad) signal, evaluated at propagation-epoch
/// boundaries.
///
/// Determinism contract: the decision at a boundary is a pure function of
/// *completed-epoch* state — the mean outstanding tokens per routable instance as
/// the routing layer's load model left them after the last epoch — never of
/// anything mid-epoch, so parallel and sequential replay scale identically.  When
/// the mean exceeds [`Self::scale_up_outstanding_tokens`], one warm (net-attached)
/// instance joins; when it falls below [`Self::scale_down_outstanding_tokens`],
/// one instance drains (spilling its reusable KV into the net tier).  The gap
/// between the thresholds is the hysteresis band; [`Self::cooldown_epochs`]
/// boundaries must pass after any scale action (scheduled membership events
/// included) before the autoscaler may fire again, so a drain still finishing
/// does not trigger a panic join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AutoscalerPolicy {
    /// Mean outstanding tokens per routable instance above which one instance
    /// joins (warm, net-attached).
    pub scale_up_outstanding_tokens: u64,
    /// Mean outstanding tokens per routable instance below which one instance
    /// drains.  Must be strictly below the scale-up threshold.
    pub scale_down_outstanding_tokens: u64,
    /// Epoch boundaries that must pass after a scale action before the next may
    /// fire (0 = may fire at every boundary).
    pub cooldown_epochs: u64,
    /// Fewest routable instances the autoscaler may drain down to (≥ 1).
    pub min_instances: usize,
    /// Most routable instances the autoscaler may grow to.
    pub max_instances: usize,
}

impl AutoscalerPolicy {
    /// Checks the policy's bounds (see [`ConfigError::AutoscalerBounds`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.min_instances == 0
            || self.min_instances > self.max_instances
            || self.scale_down_outstanding_tokens >= self.scale_up_outstanding_tokens
        {
            return Err(ConfigError::AutoscalerBounds {
                min_instances: self.min_instances,
                max_instances: self.max_instances,
                scale_up_outstanding_tokens: self.scale_up_outstanding_tokens,
                scale_down_outstanding_tokens: self.scale_down_outstanding_tokens,
            });
        }
        Ok(())
    }
}

/// Which of the five evaluated serving systems to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EngineKind {
    /// PrefillOnly: hybrid prefilling, suffix KV discarding, SRJF scheduling with
    /// continuous JCT calibration and fairness parameter λ (paper default: 500).
    PrefillOnly {
        /// Fairness parameter λ of §6.3.
        lambda: f64,
    },
    /// vLLM's PagedAttention baseline: full prefill, FCFS scheduling.
    PagedAttention,
    /// Chunked-prefill baseline (Sarathi-Serve style) with the given chunk size.
    ChunkedPrefill {
        /// Tokens per chunk (the paper's measurement uses 512).
        chunk_tokens: u64,
    },
    /// Tensor parallelism across both GPUs of the hardware setup.
    TensorParallel,
    /// Pipeline parallelism across both GPUs of the hardware setup.
    PipelineParallel,
}

impl EngineKind {
    /// PrefillOnly with the paper's default fairness parameter λ = 500.
    pub fn prefillonly_default() -> EngineKind {
        EngineKind::PrefillOnly { lambda: 500.0 }
    }

    /// The chunked-prefill baseline with the paper's chunk size of 512 tokens.
    pub fn chunked_default() -> EngineKind {
        EngineKind::ChunkedPrefill { chunk_tokens: 512 }
    }

    /// Whether this engine shards a single instance across all GPUs of the setup (the
    /// parallelisation-based baselines) or runs one instance per GPU behind the router.
    pub fn is_parallel(self) -> bool {
        matches!(
            self,
            EngineKind::TensorParallel | EngineKind::PipelineParallel
        )
    }

    /// The prefill strategy this engine uses.
    pub fn strategy(self) -> PrefillStrategy {
        match self {
            EngineKind::PrefillOnly { .. } => PrefillStrategy::hybrid_default(),
            EngineKind::PagedAttention
            | EngineKind::TensorParallel
            | EngineKind::PipelineParallel => PrefillStrategy::Full,
            EngineKind::ChunkedPrefill { chunk_tokens } => {
                PrefillStrategy::Chunked { chunk_tokens }
            }
        }
    }

    /// The scheduling policy this engine uses.
    pub fn policy(self) -> PolicyKind {
        match self {
            EngineKind::PrefillOnly { lambda } => PolicyKind::SrjfCalibrated { lambda },
            _ => PolicyKind::Fcfs,
        }
    }
}

/// Complete configuration of a serving deployment on one hardware setup.
///
/// ```
/// use prefillonly::{EngineConfig, EngineKind};
/// use gpu::{HardwareSetup, NetLinkKind};
/// use model::ModelPreset;
///
/// let config = EngineConfig::new(
///     ModelPreset::Llama31_8b,
///     HardwareSetup::l4_pair(),
///     EngineKind::prefillonly_default(),
///     20_000,
/// )
/// .with_cpu_offload(64 << 30)                  // GPU → CPU spill tier
/// .with_net_kv(256 << 30)                      // cluster-shared network tier
/// .with_net_link(NetLinkKind::Rdma100G);
///
/// assert_eq!(config.num_instances(), 2, "one instance per GPU behind the router");
/// assert_eq!(config.cpu_kv_capacity_bytes, 64 << 30);
/// assert_eq!(config.net_kv_capacity_bytes, 256 << 30);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EngineConfig {
    /// The model to serve.
    pub model: ModelPreset,
    /// The hardware setup (pair of GPUs plus link).
    pub hardware: HardwareSetup,
    /// Which serving system to run.
    pub kind: EngineKind,
    /// The longest request the deployment must be able to serve.  PrefillOnly's profile
    /// run sizes the KV pool against this length (§3.1); requests longer than the
    /// engine's own maximum input length are rejected.
    pub max_model_len: u64,
    /// vLLM-style GPU memory utilisation fraction.
    pub memory_utilization: f64,
    /// KV block size in tokens.
    pub block_size: usize,
    /// JCT profiling granularity in tokens (§6.3 uses 1,000).
    pub profile_granularity: u64,
    /// Host (CPU) memory per instance dedicated to the hierarchical KV tier (§9
    /// extension).  Zero — the default — disables offloading entirely: eviction
    /// victims are discarded and every code path behaves exactly as the published
    /// system.
    pub cpu_kv_capacity_bytes: u64,
    /// The host↔device link KV blocks cross when spilled or reloaded (PCIe for the
    /// evaluated setups; NVLink-C2C on Grace-Hopper-class hosts).
    pub host_link: LinkKind,
    /// Capacity of the *cluster-shared* network KV tier (third tier of the
    /// hierarchical cache), shared by every instance of the deployment.  Zero — the
    /// default — disables the tier entirely, making the engine bit-identical to the
    /// two-tier (GPU → CPU) configuration.
    pub net_kv_capacity_bytes: u64,
    /// The network fabric KV blocks cross when reloaded from the shared tier.
    pub net_link: NetLinkKind,
    /// Modelled propagation delay of the shared network tier, in milliseconds: a
    /// spill becomes visible to *other* instances this long after it happens.  A
    /// finite value splits each replay window into deterministic propagation
    /// *epochs* of this length (spills surface at the first epoch boundary past
    /// their publish time, and routing snapshots refresh per epoch).  Zero — the
    /// default — keeps the historical window-boundary-only propagation, byte for
    /// byte.  Inert while the tier itself is disabled (`net_kv_capacity_bytes` is
    /// 0): the delay is a property of the shared tier, and there is nothing to
    /// propagate without one.
    pub net_propagation_ms: u64,
    /// How reload-vs-recompute is decided per reloadable segment.
    pub reload_policy: ReloadPolicyKind,
    /// How arrivals are routed onto the deployment's instances (see
    /// [`RoutingPolicyKind`]; the default is the paper's sticky user-id routing).
    pub routing: RoutingPolicyKind,
    /// How propagation-epoch lengths adapt to the arrival pattern (see
    /// [`EpochLengthPolicy`]; the default keeps every epoch exactly
    /// [`Self::net_propagation_ms`] long, byte-identical to the fixed-boundary
    /// behaviour of earlier releases).
    pub epoch_length: EpochLengthPolicy,
    /// Optional threshold/hysteresis autoscaler evaluated at propagation-epoch
    /// boundaries (see [`AutoscalerPolicy`]).  `None` — the default — keeps the
    /// fleet at whatever size the hardware setup and any scheduled membership
    /// events dictate.
    pub autoscaler: Option<AutoscalerPolicy>,
    /// Per-slot serving roles (see [`InstanceRole`]).  Empty — the default — runs
    /// every instance colocated (both phases), byte-identical to the pre-role
    /// engine.  A non-empty vector must name one role per instance
    /// ([`ConfigError::RoleCountMismatch`]) and splits the fleet into a
    /// phase-aware deployment: the router only places arrivals on
    /// prefill-capable slots, and dedicated prefill slots hand finished KV
    /// chains to decode-capable slots over [`Self::net_link`].
    pub roles: Vec<InstanceRole>,
    /// Collect a per-window time series (per-slot load, tier occupancy, spill /
    /// reload / handoff counters) at every propagation-epoch boundary, exposed on
    /// [`crate::RunReport::windows`].  Off by default: the samples cost memory
    /// proportional to `windows × slots` and only epoch-driven replays produce
    /// them.
    pub track_window_metrics: bool,
}

impl EngineConfig {
    /// Creates a configuration with the defaults used throughout the evaluation.
    pub fn new(
        model: ModelPreset,
        hardware: HardwareSetup,
        kind: EngineKind,
        max_model_len: u64,
    ) -> EngineConfig {
        EngineConfig {
            model,
            hardware,
            kind,
            max_model_len,
            memory_utilization: 0.9,
            block_size: 16,
            profile_granularity: 1_000,
            cpu_kv_capacity_bytes: 0,
            host_link: LinkKind::PcieGen4,
            net_kv_capacity_bytes: 0,
            net_link: NetLinkKind::Rdma100G,
            net_propagation_ms: 0,
            reload_policy: ReloadPolicyKind::Modeled,
            routing: RoutingPolicyKind::StickyUser,
            epoch_length: EpochLengthPolicy::Fixed,
            autoscaler: None,
            roles: Vec::new(),
            track_window_metrics: false,
        }
    }

    /// Checks the configuration can actually be deployed.  This is the boundary at
    /// which structurally impossible deployments surface as typed errors instead of
    /// panics deeper in the stack (e.g. a router over zero instances).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_instances() == 0 {
            return Err(ConfigError::NoInstances);
        }
        if let EpochLengthPolicy::Adaptive { min_ms, max_ms, .. } = self.epoch_length {
            if min_ms == 0 || min_ms > max_ms {
                return Err(ConfigError::AdaptiveEpochBounds { min_ms, max_ms });
            }
        }
        if let Some(autoscaler) = &self.autoscaler {
            autoscaler.validate()?;
        }
        if !self.roles.is_empty() {
            if self.roles.len() != self.num_instances() as usize {
                return Err(ConfigError::RoleCountMismatch {
                    roles: self.roles.len(),
                    instances: self.num_instances() as usize,
                });
            }
            if !self.roles.iter().any(|role| role.can_prefill()) {
                return Err(ConfigError::NoPrefillCapableSlot);
            }
            let has_prefill_only = self.roles.contains(&InstanceRole::Prefill);
            if has_prefill_only && !self.roles.iter().any(|role| role.can_decode()) {
                return Err(ConfigError::NoDecodeCapableSlot);
            }
            if self.disaggregated() && !self.net_link.is_enabled() {
                return Err(ConfigError::DisaggregationNeedsNetLink);
            }
        }
        Ok(())
    }

    /// The role of slot `instance` (see [`InstanceRole`]).  Colocated for every
    /// slot of a role-less deployment and for slots beyond the configured vector
    /// (elastic joins pick their role from the membership event instead).
    pub fn role_of(&self, instance: usize) -> InstanceRole {
        self.roles.get(instance).copied().unwrap_or_default()
    }

    /// Whether this deployment splits serving phases across dedicated pools (any
    /// slot with a non-`Colocated` role).
    pub fn disaggregated(&self) -> bool {
        self.roles
            .iter()
            .any(|role| *role != InstanceRole::Colocated)
    }

    /// Overrides the routing policy (see [`RoutingPolicyKind`]).
    pub fn with_routing(mut self, routing: RoutingPolicyKind) -> EngineConfig {
        self.routing = routing;
        self
    }

    /// Assigns per-slot serving roles (see [`Self::roles`]); the vector's length
    /// must match [`Self::num_instances`], checked by [`Self::validate`].
    pub fn with_roles(mut self, roles: Vec<InstanceRole>) -> EngineConfig {
        self.roles = roles;
        self
    }

    /// Enables the per-window time series (see [`Self::track_window_metrics`]).
    pub fn with_window_metrics(mut self) -> EngineConfig {
        self.track_window_metrics = true;
        self
    }

    /// Enables the hierarchical KV tier: each instance gets `cpu_kv_capacity_bytes`
    /// of host memory for evicted prefix blocks, reached over [`Self::host_link`]
    /// (PCIe gen-4 unless overridden — host memory sits behind the PCIe switch even
    /// on NVLink GPU setups).
    pub fn with_cpu_offload(mut self, cpu_kv_capacity_bytes: u64) -> EngineConfig {
        self.cpu_kv_capacity_bytes = cpu_kv_capacity_bytes;
        self
    }

    /// Overrides the host↔device link used for KV offload traffic (e.g.
    /// [`LinkKind::NvLink4`] to model a Grace-Hopper-style coherent host link).
    pub fn with_host_link(mut self, host_link: LinkKind) -> EngineConfig {
        self.host_link = host_link;
        self
    }

    /// Enables the cluster-shared network KV tier: the deployment gets
    /// `net_kv_capacity_bytes` of pooled memory for prefix blocks shared across all
    /// of its instances, reached over [`Self::net_link`].
    pub fn with_net_kv(mut self, net_kv_capacity_bytes: u64) -> EngineConfig {
        self.net_kv_capacity_bytes = net_kv_capacity_bytes;
        self
    }

    /// Overrides the network fabric used for shared-tier reload traffic.
    pub fn with_net_link(mut self, net_link: NetLinkKind) -> EngineConfig {
        self.net_link = net_link;
        self
    }

    /// Models within-window propagation of the shared network tier: spills become
    /// visible cluster-wide `net_propagation_ms` after they happen, instead of only
    /// at replay-window boundaries (see [`Self::net_propagation_ms`]).
    pub fn with_net_propagation_ms(mut self, net_propagation_ms: u64) -> EngineConfig {
        self.net_propagation_ms = net_propagation_ms;
        self
    }

    /// Overrides the reload-vs-recompute policy (see [`ReloadPolicyKind`]).
    pub fn with_reload_policy(mut self, reload_policy: ReloadPolicyKind) -> EngineConfig {
        self.reload_policy = reload_policy;
        self
    }

    /// Makes propagation-epoch lengths adapt to arrival density (see
    /// [`EpochLengthPolicy::Adaptive`]): epochs shrink towards `min_ms` under
    /// burst and stretch towards `max_ms` when the trace goes idle, keeping
    /// per-epoch work near `target_arrivals` while staying a pure function of the
    /// trace — parallel and sequential replay remain byte-identical.
    pub fn with_adaptive_epochs(
        mut self,
        target_arrivals: u64,
        min_ms: u64,
        max_ms: u64,
    ) -> EngineConfig {
        self.epoch_length = EpochLengthPolicy::Adaptive {
            target_arrivals,
            min_ms,
            max_ms,
        };
        self
    }

    /// Installs a threshold/hysteresis autoscaler evaluated at propagation-epoch
    /// boundaries (see [`AutoscalerPolicy`]).  The policy's bounds are checked by
    /// [`Self::validate`] when the cluster is built.
    pub fn with_autoscaler(mut self, autoscaler: AutoscalerPolicy) -> EngineConfig {
        self.autoscaler = Some(autoscaler);
        self
    }

    /// Number of engine instances this deployment runs (one per GPU for single-GPU
    /// engines, a single spanning instance for TP/PP).
    pub fn num_instances(&self) -> u32 {
        if self.kind.is_parallel() {
            1
        } else {
            self.hardware.num_gpus
        }
    }

    /// Builds the executor configuration for one instance of this deployment.
    pub fn executor_config(&self) -> ExecutorConfig {
        let parallelism = match self.kind {
            EngineKind::TensorParallel => Parallelism::TensorParallel {
                degree: self.hardware.num_gpus,
            },
            EngineKind::PipelineParallel => Parallelism::PipelineParallel {
                stages: self.hardware.num_gpus,
            },
            _ => Parallelism::Single,
        };
        ExecutorConfig {
            model: self.model.config(),
            gpu: self.hardware.gpu_spec(),
            link: self.hardware.link,
            parallelism,
            strategy: self.kind.strategy(),
            memory_utilization: self.memory_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kinds_map_to_strategies_and_policies() {
        assert_eq!(EngineKind::PagedAttention.strategy(), PrefillStrategy::Full);
        assert!(matches!(
            EngineKind::prefillonly_default().strategy(),
            PrefillStrategy::Hybrid(_)
        ));
        assert!(matches!(
            EngineKind::chunked_default().strategy(),
            PrefillStrategy::Chunked { chunk_tokens: 512 }
        ));
        assert!(matches!(
            EngineKind::prefillonly_default().policy(),
            PolicyKind::SrjfCalibrated { .. }
        ));
        assert!(matches!(
            EngineKind::PagedAttention.policy(),
            PolicyKind::Fcfs
        ));
    }

    #[test]
    fn instance_counts_follow_parallelism() {
        let single = EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            EngineKind::prefillonly_default(),
            20_000,
        );
        assert_eq!(single.num_instances(), 2);
        let tp = EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            EngineKind::TensorParallel,
            20_000,
        );
        assert_eq!(tp.num_instances(), 1);
        assert!(EngineKind::TensorParallel.is_parallel());
        assert!(!EngineKind::PagedAttention.is_parallel());
    }

    #[test]
    fn zero_instance_configs_fail_validation_with_a_typed_error() {
        let mut config = EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            EngineKind::PagedAttention,
            20_000,
        );
        assert_eq!(config.validate(), Ok(()));
        config.hardware.num_gpus = 0;
        assert_eq!(config.num_instances(), 0);
        let err = config.validate().unwrap_err();
        assert_eq!(err, ConfigError::NoInstances);
        assert!(err.to_string().contains("zero engine instances"));
    }

    #[test]
    fn routing_policy_defaults_to_sticky_and_is_overridable() {
        let config = EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            EngineKind::prefillonly_default(),
            20_000,
        );
        assert_eq!(config.routing, RoutingPolicyKind::StickyUser);
        let config = config.with_routing(RoutingPolicyKind::CacheAware);
        assert_eq!(config.routing, RoutingPolicyKind::CacheAware);
    }

    #[test]
    fn autoscaler_bounds_are_validated() {
        let base = EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            EngineKind::prefillonly_default(),
            20_000,
        );
        let good = AutoscalerPolicy {
            scale_up_outstanding_tokens: 50_000,
            scale_down_outstanding_tokens: 5_000,
            cooldown_epochs: 2,
            min_instances: 1,
            max_instances: 4,
        };
        assert_eq!(base.clone().with_autoscaler(good).validate(), Ok(()));

        for (name, bad) in [
            (
                "zero fleet floor",
                AutoscalerPolicy {
                    min_instances: 0,
                    ..good
                },
            ),
            (
                "floor above ceiling",
                AutoscalerPolicy {
                    min_instances: 5,
                    max_instances: 4,
                    ..good
                },
            ),
            (
                "no hysteresis band",
                AutoscalerPolicy {
                    scale_down_outstanding_tokens: 50_000,
                    ..good
                },
            ),
        ] {
            let err = base.clone().with_autoscaler(bad).validate().unwrap_err();
            assert!(
                matches!(err, ConfigError::AutoscalerBounds { .. }),
                "{name} must fail validation"
            );
            assert!(err.to_string().contains("autoscaler"), "{name}");
        }
    }

    #[test]
    fn degenerate_role_fleets_fail_validation_with_typed_errors() {
        let base = EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            EngineKind::prefillonly_default(),
            20_000,
        )
        .with_net_kv(64 << 30);

        // No roles: colocated by definition, not disaggregated, always valid.
        assert_eq!(base.validate(), Ok(()));
        assert!(!base.disaggregated());
        assert_eq!(base.role_of(0), InstanceRole::Colocated);
        assert_eq!(base.role_of(99), InstanceRole::Colocated);

        // A proper 1:1 split validates.
        let split = base
            .clone()
            .with_roles(vec![InstanceRole::Prefill, InstanceRole::Decode]);
        assert_eq!(split.validate(), Ok(()));
        assert!(split.disaggregated());
        assert_eq!(split.role_of(0), InstanceRole::Prefill);
        assert_eq!(split.role_of(1), InstanceRole::Decode);

        // Wrong vector length.
        let err = base
            .clone()
            .with_roles(vec![InstanceRole::Prefill])
            .validate()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::RoleCountMismatch {
                roles: 1,
                instances: 2
            }
        );
        assert!(err.to_string().contains("role vector"));

        // All-Decode: nothing can accept an arrival.
        let err = base
            .clone()
            .with_roles(vec![InstanceRole::Decode, InstanceRole::Decode])
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::NoPrefillCapableSlot);
        assert!(err.to_string().contains("arrival"));

        // All-Prefill: handoffs would wait forever.
        let err = base
            .clone()
            .with_roles(vec![InstanceRole::Prefill, InstanceRole::Prefill])
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::NoDecodeCapableSlot);
        assert!(err.to_string().contains("decode"));

        // Disaggregated without a fabric to hand KV over.
        let err = base
            .clone()
            .with_roles(vec![InstanceRole::Prefill, InstanceRole::Decode])
            .with_net_link(NetLinkKind::Disabled)
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::DisaggregationNeedsNetLink);
        assert!(err.to_string().contains("net_link"));

        // Explicit all-Colocated roles are allowed even with the fabric disabled
        // (nothing ever crosses it).
        let colocated = base
            .clone()
            .with_roles(vec![InstanceRole::Colocated, InstanceRole::Colocated])
            .with_net_link(NetLinkKind::Disabled);
        assert_eq!(colocated.validate(), Ok(()));
        assert!(!colocated.disaggregated());
    }

    #[test]
    fn executor_config_inherits_hardware() {
        let cfg = EngineConfig::new(
            ModelPreset::Qwen25_32bFp8,
            HardwareSetup::a100_pair(),
            EngineKind::PipelineParallel,
            60_000,
        );
        let exec = cfg.executor_config();
        assert_eq!(exec.parallelism.num_gpus(), 2);
        assert_eq!(exec.gpu.kind, gpu::GpuKind::A100_40G);
        exec.validate();
    }
}

//! The evaluated systems and their display names.

use crate::config::EngineKind;

/// All five evaluated engines, in the legend order of Figures 6-9: PrefillOnly first,
/// then the non-parallel baselines, then the parallelisation-based baselines.
pub fn all_engine_kinds() -> Vec<EngineKind> {
    vec![
        EngineKind::prefillonly_default(),
        EngineKind::PagedAttention,
        EngineKind::chunked_default(),
        EngineKind::PipelineParallel,
        EngineKind::TensorParallel,
    ]
}

/// Stable display name of an engine kind, matching the paper's figure legends.
pub fn engine_display_name(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::PrefillOnly { .. } => "PrefillOnly",
        EngineKind::PagedAttention => "PagedAttention",
        EngineKind::ChunkedPrefill { .. } => "Chunked Prefill",
        EngineKind::TensorParallel => "Tensor Parallel",
        EngineKind::PipelineParallel => "Pipeline Parallel",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_engines_in_legend_order() {
        let kinds = all_engine_kinds();
        assert_eq!(kinds.len(), 5);
        assert_eq!(engine_display_name(kinds[0]), "PrefillOnly");
        assert_eq!(engine_display_name(kinds[1]), "PagedAttention");
        assert_eq!(engine_display_name(kinds[2]), "Chunked Prefill");
        assert_eq!(engine_display_name(kinds[3]), "Pipeline Parallel");
        assert_eq!(engine_display_name(kinds[4]), "Tensor Parallel");
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<&str> = all_engine_kinds()
            .into_iter()
            .map(engine_display_name)
            .collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
    }
}

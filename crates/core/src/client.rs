//! Synchronous single-instance client facade.
//!
//! The real PrefillOnly exposes an OpenAI-compatible HTTP server; applications send a
//! prompt plus a list of acceptable output tokens and read back one probability per
//! token (§2.3).  [`PrefillOnlyClient`] provides that interaction pattern in-process:
//! each call submits one prefill-only request to a private engine instance, advances
//! the instance's virtual clock through execution, and returns the scores together with
//! the simulated latency.  It is what the runnable examples build on.

use std::sync::Arc;

use simcore::SimTime;

use crate::config::EngineConfig;
use crate::instance::EngineInstance;
use crate::request::{pseudo_scores, PrefillRequest, PrefillResponse};

/// A blocking, single-tenant client over one engine instance.
pub struct PrefillOnlyClient {
    instance: EngineInstance,
    clock: SimTime,
    next_request_id: u64,
}

impl PrefillOnlyClient {
    /// Creates a client backed by a freshly profiled engine instance.
    pub fn new(config: &EngineConfig) -> PrefillOnlyClient {
        PrefillOnlyClient {
            instance: EngineInstance::new(config, 0),
            clock: SimTime::ZERO,
            next_request_id: 0,
        }
    }

    /// The engine instance behind the client (for inspecting cache statistics etc.).
    pub fn instance(&self) -> &EngineInstance {
        &self.instance
    }

    /// Current virtual time of the client.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Scores a prompt against a list of acceptable output tokens, as a user of the
    /// paper's system would ("Should we recommend this document?  Answer Yes or No").
    ///
    /// Returns `None` if the prompt is longer than the engine's maximum input length.
    pub fn try_score(
        &mut self,
        tokens: &[u32],
        allowed_outputs: &[&str],
    ) -> Option<PrefillResponse> {
        if !self.instance.can_serve(tokens.len() as u64) {
            return None;
        }
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let arrival = self.clock;
        let request = PrefillRequest {
            id: request_id,
            user_id: 0,
            tokens: Arc::new(tokens.to_vec()),
            decode_tokens: 0,
            allowed_outputs: allowed_outputs.iter().map(|s| s.to_string()).collect(),
            arrival,
            routing: crate::routing::RoutingReason::Direct,
        };
        self.instance.enqueue(request, arrival);
        let started = self
            .instance
            .try_start(arrival)
            .expect("an idle instance must admit a feasible request");
        let record = self
            .instance
            .complete(started.request_id, started.completion)
            .expect("a colocated prefill-only completion always yields a record");
        self.clock = started.completion;
        Some(PrefillResponse {
            request_id,
            scores: pseudo_scores(
                tokens,
                &allowed_outputs
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>(),
            ),
            latency: record.latency(),
            cached_tokens: record.cached_tokens,
        })
    }

    /// Like [`Self::try_score`] but panics on oversized prompts.
    ///
    /// # Panics
    ///
    /// Panics if the prompt exceeds the engine's maximum input length.
    pub fn score(&mut self, tokens: &[u32], allowed_outputs: &[&str]) -> PrefillResponse {
        self.try_score(tokens, allowed_outputs)
            .expect("prompt exceeds the engine's maximum input length")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineConfig, EngineKind};
    use gpu::HardwareSetup;
    use model::ModelPreset;

    fn client() -> PrefillOnlyClient {
        PrefillOnlyClient::new(&EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            EngineKind::prefillonly_default(),
            30_000,
        ))
    }

    #[test]
    fn scoring_returns_a_distribution_and_latency() {
        let mut c = client();
        let prompt: Vec<u32> = (0..5_000).collect();
        let response = c.score(&prompt, &["Yes", "No"]);
        assert_eq!(response.scores.len(), 2);
        let sum: f64 = response.scores.iter().map(|s| s.probability).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(response.latency.as_secs_f64() > 0.0);
        assert_eq!(response.cached_tokens, 0);
        assert!(c.now() > SimTime::ZERO);
    }

    #[test]
    fn repeated_prefix_is_served_from_cache_and_faster() {
        let mut c = client();
        let profile: Vec<u32> = (0..10_000).collect();
        let mut first = profile.clone();
        first.extend(900_000..900_150u32);
        let mut second = profile.clone();
        second.extend(800_000..800_150u32);
        let cold = c.score(&first, &["Yes", "No"]);
        let warm = c.score(&second, &["Yes", "No"]);
        assert!(warm.cached_tokens > 9_000);
        assert!(warm.latency < cold.latency);
    }

    #[test]
    fn oversized_prompt_is_rejected_gracefully() {
        let mut c = client();
        let mil = c.instance().max_input_length();
        let prompt: Vec<u32> = (0..(mil + 10_000) as u32).collect();
        assert!(c.try_score(&prompt, &["Yes"]).is_none());
    }

    #[test]
    fn request_ids_are_unique_and_increasing() {
        let mut c = client();
        let prompt: Vec<u32> = (0..1_000).collect();
        let a = c.score(&prompt, &["Yes", "No"]);
        let b = c.score(&prompt, &["Yes", "No"]);
        assert!(b.request_id > a.request_id);
    }
}

//! User-id based request routing.
//!
//! §7.1 ("Routing"): single-GPU engines are replicated, one instance per GPU, and
//! requests are routed so that all requests of one user land on the same instance —
//! users are assigned to instances round-robin in order of first appearance.  Keeping a
//! user's requests together is what lets the instance's prefix cache reuse the user's
//! profile across their 50 candidate posts.

use std::collections::HashMap;

/// Sticky round-robin router keyed by user id.
#[derive(Debug, Clone)]
pub struct UserRouter {
    num_instances: usize,
    assignment: HashMap<u64, usize>,
    next: usize,
}

impl UserRouter {
    /// Creates a router over `num_instances` engine instances.
    ///
    /// # Panics
    ///
    /// Panics if `num_instances` is zero.
    pub fn new(num_instances: usize) -> UserRouter {
        assert!(num_instances > 0, "router needs at least one instance");
        UserRouter {
            num_instances,
            assignment: HashMap::new(),
            next: 0,
        }
    }

    /// Returns the instance index for `user_id`, assigning a new user to the next
    /// instance in round-robin order.
    pub fn route(&mut self, user_id: u64) -> usize {
        if let Some(&instance) = self.assignment.get(&user_id) {
            return instance;
        }
        let instance = self.next;
        self.assignment.insert(user_id, instance);
        self.next = (self.next + 1) % self.num_instances;
        instance
    }

    /// Number of instances behind the router.
    pub fn num_instances(&self) -> usize {
        self.num_instances
    }

    /// Number of distinct users seen so far.
    pub fn known_users(&self) -> usize {
        self.assignment.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn users_stick_to_their_instance() {
        let mut router = UserRouter::new(2);
        let first = router.route(10);
        for _ in 0..5 {
            assert_eq!(router.route(10), first);
        }
        assert_eq!(router.known_users(), 1);
    }

    #[test]
    fn new_users_round_robin() {
        let mut router = UserRouter::new(3);
        let assignments: Vec<usize> = (0..9).map(|u| router.route(u)).collect();
        assert_eq!(assignments, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
        assert_eq!(router.num_instances(), 3);
        assert_eq!(router.known_users(), 9);
    }

    #[test]
    fn single_instance_routes_everything_to_zero() {
        let mut router = UserRouter::new(1);
        assert!(std::iter::repeat_with(|| router.route(777))
            .take(3)
            .all(|i| i == 0));
        assert_eq!(router.route(888), 0);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_instances_panics() {
        UserRouter::new(0);
    }
}

//! The pluggable routing layer: how arrivals are mapped onto engine instances.
//!
//! §7.1 ("Routing") pins every user to one instance round-robin in order of first
//! appearance ([`UserRouter`], kept as the [`RoutingPolicyKind::StickyUser`] policy and
//! the default).  With the KV hierarchy spanning GPU/CPU/network tiers, the router is
//! also the natural place to *use* the residency signal the simulator models:
//! [`RoutingPolicyKind::CacheAware`] routes each request to the instance with the
//! deepest link-cost-discounted prefix hit (the sglang radix-cache router's idea), and
//! [`RoutingPolicyKind::LeastLoaded`] balances on modelled load alone.
//!
//! # Windowed routing and determinism
//!
//! State-dependent routing breaks the instance-independence the parallel replay relies
//! on — a decision taken mid-window would have to observe another thread's simulation
//! state.  The routing layer therefore mirrors the network tier's snapshot-merge
//! discipline: at the start of each replay window ([`crate::Cluster::run`] /
//! `run_sequential`) the cluster captures a [`RouterSnapshot`] — per-instance queue
//! depth and outstanding tokens, plus (for policies that ask) a frozen three-tier
//! [`PrefixProbe`] of each instance's KV manager — and routes *every* arrival of the
//! window against that snapshot, in `(arrival time, trace index)` order, before any
//! instance simulates.  The snapshot's load half is updated with the policy's own
//! decisions as the pass proceeds (so balancing works within a window); the probe half
//! stays frozen (cache effects propagate between windows, exactly like the shared
//! network pool).  Both replay paths call the same pass, so the partition — and hence
//! the replay — is byte-identical no matter how many threads simulate it.
//!
//! Sticky routing needs no snapshot at all: it is a pure function of user
//! first-appearance order, which trace generation precomputes
//! ([`workload::StickySeq`]).  On a stamped, arrival-sorted trace the sticky policy
//! partitions with plain arithmetic and skips the windowed pass entirely.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use kvcache::{PrefixProbe, TokenBlockHash};
use workload::{ArrivalPattern, StreamedArrival};

/// Why routing could not be set up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingError {
    /// The deployment has no engine instances to route to.
    NoInstances,
}

impl std::fmt::Display for RoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingError::NoInstances => {
                write!(f, "routing needs at least one engine instance")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// Which routing policy a deployment runs (selected via
/// [`EngineConfig::routing`](crate::EngineConfig::routing)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicyKind {
    /// §7.1 user-id routing (the default): every user is pinned to one instance,
    /// assigned round-robin in order of first appearance.
    StickyUser,
    /// Route each request to the instance with the least modelled load (outstanding
    /// tokens, then queued requests, then instance index).
    LeastLoaded,
    /// Route each request to the instance with the deepest link-cost-discounted
    /// three-tier prefix hit; fall back to load when no instance holds a usable
    /// prefix.  Ties break by load, then instance index.
    CacheAware,
}

impl RoutingPolicyKind {
    /// Builds the policy for a deployment of `num_instances` instances.
    pub fn build(
        self,
        num_instances: usize,
    ) -> Result<Box<dyn RoutingPolicy + Send>, RoutingError> {
        if num_instances == 0 {
            return Err(RoutingError::NoInstances);
        }
        Ok(match self {
            RoutingPolicyKind::StickyUser => Box::new(StickyUserPolicy {
                router: UserRouter::new(num_instances).expect("checked above"),
                rank_users: Vec::new(),
                elastic: false,
            }),
            RoutingPolicyKind::LeastLoaded => Box::new(LeastLoadedPolicy),
            RoutingPolicyKind::CacheAware => Box::new(CacheAwarePolicy),
        })
    }
}

/// Why an arrival was routed to its instance, recorded per request in
/// [`RequestRecord::routing`](crate::RequestRecord::routing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingReason {
    /// Submitted directly to an instance without a routing policy (the
    /// [`PrefillOnlyClient`](crate::PrefillOnlyClient) facade).
    Direct,
    /// Sticky routing: first request of a new user, assigned round-robin.
    StickyNew,
    /// Sticky routing: the user was already pinned to this instance.
    StickyExisting,
    /// Least-loaded routing: this instance had the least modelled load.
    LeastLoaded,
    /// Cache-aware routing: this instance held the deepest discounted prefix hit.
    DeepestPrefix,
    /// Cache-aware routing: no instance held a usable prefix; fell back to load.
    LoadFallback,
}

/// One routing decision: the chosen instance and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingDecision {
    /// Index of the chosen instance.
    pub instance: usize,
    /// Why it was chosen.
    pub reason: RoutingReason,
}

/// Modelled load of one instance, as captured at window start and updated with the
/// window's own routing decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceLoad {
    /// Requests waiting or running on the instance.
    pub queued_requests: u64,
    /// Input tokens of those requests.
    pub outstanding_tokens: u64,
}

/// The deterministic per-window view routing policies decide against (see the module
/// docs for the lifecycle).
///
/// In the current full-drain replay windows every instance is idle between `run`
/// calls, so the *captured* loads are zero and the load signal is driven entirely by
/// [`Self::note_routed`] within the window; the capture exists so mid-trace windowing
/// (and tests) see real queue state without an API change.
#[derive(Debug)]
pub struct RouterSnapshot {
    loads: Vec<InstanceLoad>,
    /// One frozen three-tier probe per instance; empty unless the policy asked for
    /// probes ([`RoutingPolicy::needs_prefix_probe`]).
    probes: Vec<PrefixProbe>,
    /// The instance slots a decision may name, ascending.  On a fixed fleet this is
    /// the identity `0..loads.len()`; under elastic membership, draining and
    /// retired slots stay *in* the loads/probes vectors (instance indices are
    /// stable for the replay's lifetime) but drop out of this list, so policies
    /// never route new work onto a leaver.
    slots: Vec<usize>,
    block_size: usize,
    /// GPU KV pool capacity of one instance, in blocks (instances of a deployment
    /// are identical) — caps how much tier-resident depth is actually realisable.
    pool_capacity_blocks: u64,
    /// JCT-probe weight of a CPU-tier hit token, from the instance profile — the same
    /// host-link-vs-recompute quote the reload policy prices transfers with.
    cpu_hit_discount: f64,
    /// JCT-probe weight of a network-tier hit token (network-link quote).
    net_hit_discount: f64,
}

impl RouterSnapshot {
    /// Decomposes the snapshot into its load and probe buffers so the caller can
    /// recycle the allocations for the next routing pass (epoch-driven replay
    /// routes thousands of passes per window; reallocating per pass is pure
    /// overhead).
    pub fn into_buffers(self) -> (Vec<InstanceLoad>, Vec<PrefixProbe>) {
        (self.loads, self.probes)
    }

    /// Builds a snapshot from per-instance loads and (optionally) per-instance
    /// probes.  `probes` must be empty or have one entry per instance.  Every slot
    /// is routable; use [`Self::with_routable_slots`] to restrict.
    pub fn new(
        loads: Vec<InstanceLoad>,
        probes: Vec<PrefixProbe>,
        block_size: usize,
        pool_capacity_blocks: u64,
        cpu_hit_discount: f64,
        net_hit_discount: f64,
    ) -> RouterSnapshot {
        assert!(
            probes.is_empty() || probes.len() == loads.len(),
            "one probe per instance (or none at all)"
        );
        let slots = (0..loads.len()).collect();
        RouterSnapshot {
            loads,
            probes,
            slots,
            block_size,
            pool_capacity_blocks,
            cpu_hit_discount,
            net_hit_discount,
        }
    }

    /// Restricts the snapshot to the given routable slots (ascending instance
    /// indices; draining/retired slots keep their loads/probes entries but may not
    /// be chosen).  Panics unless `slots` is non-empty, strictly ascending and
    /// in range — an all-leavers fleet has nowhere to route.
    pub fn with_routable_slots(mut self, slots: Vec<usize>) -> RouterSnapshot {
        assert!(!slots.is_empty(), "at least one routable slot");
        assert!(
            slots.windows(2).all(|w| w[0] < w[1])
                && *slots.last().expect("non-empty") < self.loads.len(),
            "routable slots must be strictly ascending instance indices"
        );
        self.slots = slots;
        self
    }

    /// Number of instances behind the router (routable or not — decisions are
    /// bounds-checked against this; routability against [`Self::routable`]).
    pub fn num_instances(&self) -> usize {
        self.loads.len()
    }

    /// The routable instance slots, ascending (see [`Self::with_routable_slots`]).
    pub fn routable(&self) -> &[usize] {
        &self.slots
    }

    /// The modelled load of one instance (window-start state plus this window's
    /// earlier routing decisions).
    pub fn load(&self, instance: usize) -> InstanceLoad {
        self.loads[instance]
    }

    /// Accounts a routed arrival into the instance's modelled load, so later
    /// decisions of the same window see the induced pressure.
    pub fn note_routed(&mut self, instance: usize, tokens: u64) {
        self.loads[instance].queued_requests += 1;
        self.loads[instance].outstanding_tokens += tokens;
    }

    /// Link-cost-discounted prefix-hit depth of a hash chain on one instance, in
    /// tokens: GPU hits count in full; CPU and network hits are discounted by their
    /// tier's reload-vs-recompute cost ratio (the [`gpu::HostLink`] / [`gpu::NetLink`]
    /// quotes folded into the instance profile), so a deep hit behind a slow link
    /// never outbids a shallower hit behind a fast one.  The *same* formula the SRJF
    /// probe scores with (the instance module's `effective_cached_tokens`), pool-cap
    /// included — a tier continuation deeper than the GPU pool cannot be rehydrated,
    /// so crediting it would make the router prefer placements the allocator will
    /// truncate.
    ///
    /// Returns 0 when the snapshot carries no probes.
    pub fn discounted_hit_tokens(&self, instance: usize, hashes: &[TokenBlockHash]) -> u64 {
        let Some(probe) = self.probes.get(instance) else {
            return 0;
        };
        crate::instance::effective_cached_tokens(
            probe.tier_hits(hashes),
            self.pool_capacity_blocks,
            self.block_size,
            self.cpu_hit_discount,
            self.net_hit_discount,
        )
    }

    /// Whether any probe of the snapshot holds *any* resident block in *any* tier.
    /// When false, every chain walk answers depth 0, so a cache-consulting caller
    /// can skip hashing arrival tokens entirely — the routing outcome is provably
    /// the load fallback either way.  A cold fleet (the entire first window, and
    /// every epoch before the first spill propagates) pays zero hashing cost.
    pub fn has_prefix_residency(&self) -> bool {
        self.probes.iter().any(|probe| {
            let (gpu, cpu, net) = probe.resident_blocks();
            gpu + cpu + net > 0
        })
    }

    /// `(outstanding tokens, queued requests, index)` — the deterministic comparison
    /// key load-based choices and tie-breaks minimise.
    fn load_key(&self, instance: usize) -> (u64, u64, usize) {
        let load = self.loads[instance];
        (load.outstanding_tokens, load.queued_requests, instance)
    }
}

/// One arrival as seen by a routing policy.
#[derive(Debug, Clone, Copy)]
pub struct RouteQuery<'a> {
    /// The user the request belongs to.
    pub user_id: u64,
    /// Total input tokens of the request.
    pub num_tokens: u64,
    /// The request's block-hash chain; empty unless the policy asked for probes.
    pub hashes: &'a [TokenBlockHash],
}

/// A routing policy: maps arrivals onto instances against a per-window
/// [`RouterSnapshot`] (see the module docs for the determinism contract).
///
/// Policies may keep internal state across windows (sticky assignments persist for
/// the cluster's lifetime) but must be deterministic: the decision sequence is a pure
/// function of the queries and the snapshot.
pub trait RoutingPolicy: Send {
    /// Which configured kind this policy implements.
    fn kind(&self) -> RoutingPolicyKind;

    /// Whether [`RouterSnapshot`] must include per-instance prefix probes (building
    /// them costs a pass over every tier's resident set, so only cache-consulting
    /// policies should ask).
    fn needs_prefix_probe(&self) -> bool {
        false
    }

    /// Routes one arrival.  Called once per arrival of the window, in
    /// `(arrival time, trace index)` order; the caller folds each decision into the
    /// snapshot's load model via [`RouterSnapshot::note_routed`].
    fn route(&mut self, query: &RouteQuery<'_>, snapshot: &RouterSnapshot) -> RoutingDecision;

    /// Whole-trace fast path for state-independent policies: given an
    /// arrival-sorted trace, return every decision at once, or `None` to take the
    /// windowed [`Self::route`] pass.  The default has no fast path.
    fn route_sorted_trace(
        &mut self,
        _arrivals: &[ArrivalPattern],
        _num_instances: usize,
    ) -> Option<Vec<RoutingDecision>> {
        None
    }

    /// Per-epoch batch fast path, the streaming counterpart of
    /// [`Self::route_sorted_trace`]: route one arrival-sorted epoch of a stream at
    /// once, writing into `decisions[..batch.len()]`, or return `false` to take
    /// the windowed [`Self::route`] pass.  Unlike the whole-trace path, the stamps
    /// of a batch may *extend* history the policy accumulated from earlier epochs
    /// of the same stream — this is what keeps the arithmetic partition alive
    /// across epoch boundaries.  The default has no fast path.
    fn route_stamped_batch(
        &mut self,
        _batch: &[StreamedArrival],
        _num_instances: usize,
        _decisions: &mut [RoutingDecision],
    ) -> bool {
        false
    }

    /// Notifies the policy that the fleet's routable slots changed (a membership
    /// event was applied at an epoch boundary).  `routable` is the new ascending
    /// slot list.  Stateless policies need nothing — they read
    /// [`RouterSnapshot::routable`] each pass; the sticky policy uses this to
    /// *permanently* retire its arithmetic `user_seq % n` fast path, whose modulus
    /// silently diverges from round-robin over a resized fleet.
    fn note_membership_change(&mut self, _routable: &[usize]) {}
}

/// The [`RoutingPolicyKind::StickyUser`] policy: §7.1 user-id routing over a
/// [`UserRouter`], with the arithmetic fast path over traces stamped with
/// [`workload::StickySeq`].
struct StickyUserPolicy {
    router: UserRouter,
    /// Users in order of first appearance — the rank → user table the stamp fast
    /// paths validate against.  Maintained by *every* routing path (slow-path
    /// `route` included), which is sound because round-robin assignment in
    /// first-appearance order always pins the `r`-th distinct user to
    /// `r % num_instances`; epoch batches whose stamps extend this history can
    /// therefore keep fast-pathing after a slow-path window.
    rank_users: Vec<u64>,
    /// Set (permanently) by the first membership event.  The arithmetic fast path
    /// computes `user_seq % num_instances` — the round-robin outcome over the fleet
    /// the trace was *stamped* for.  Once the fleet has resized, that modulus
    /// silently disagrees with round-robin over the surviving slots (and can even
    /// name a drained instance), so every later epoch must take the slot-aware
    /// slow path.
    elastic: bool,
}

impl StickyUserPolicy {
    /// Validates that every arrival is stamped and that the stamps consistently
    /// *extend* the router's first-appearance history: new firsts ranked
    /// `known, known+1, ...` in order by distinct unseen users, and every repeat
    /// pointing at its own user's rank.  Returns the new first-appearing users in
    /// order, without mutating anything — a spliced or hand-edited trace fails
    /// here and takes the slow path from an untouched router.
    fn validate_stamps<'b>(
        &self,
        arrivals: impl Iterator<Item = &'b ArrivalPattern>,
    ) -> Option<Vec<u64>> {
        let known = self.rank_users.len();
        let mut new_firsts: Vec<u64> = Vec::new();
        let mut distinct_firsts: HashSet<u64> = HashSet::new();
        for arrival in arrivals {
            let sticky = arrival.sticky?;
            let user = arrival.template.user_id;
            if sticky.first_of_user {
                if sticky.user_seq != (known + new_firsts.len()) as u64
                    || self.router.is_known(user)
                    || !distinct_firsts.insert(user)
                {
                    return None;
                }
                new_firsts.push(user);
            } else {
                let rank = sticky.user_seq as usize;
                let expected = if rank < known {
                    self.rank_users.get(rank)
                } else {
                    new_firsts.get(rank - known)
                };
                if expected != Some(&user) {
                    return None;
                }
            }
        }
        Some(new_firsts)
    }

    /// Pins a newly first-appearing user at the next rank (the arithmetic
    /// round-robin outcome) and records it in the rank table.
    fn seed_first(&mut self, user: u64) {
        let instance = self.rank_users.len() % self.router.num_instances();
        self.router.seed(user, instance);
        self.rank_users.push(user);
    }

    fn arithmetic_decision(sticky: workload::StickySeq, num_instances: usize) -> RoutingDecision {
        RoutingDecision {
            instance: (sticky.user_seq % num_instances as u64) as usize,
            reason: if sticky.first_of_user {
                RoutingReason::StickyNew
            } else {
                RoutingReason::StickyExisting
            },
        }
    }
}

impl RoutingPolicy for StickyUserPolicy {
    fn kind(&self) -> RoutingPolicyKind {
        RoutingPolicyKind::StickyUser
    }

    fn route(&mut self, query: &RouteQuery<'_>, snapshot: &RouterSnapshot) -> RoutingDecision {
        if self.elastic {
            // Slot-aware stickiness over a resized fleet: users keep their pin
            // while it stays routable; users pinned to a drained slot (and new
            // users) take the next routable slot round-robin.
            let known = self.router.is_known(query.user_id);
            let instance = self.router.route_slots(query.user_id, snapshot.routable());
            let reason = if known {
                RoutingReason::StickyExisting
            } else {
                self.rank_users.push(query.user_id);
                RoutingReason::StickyNew
            };
            debug_assert_eq!(self.rank_users.len(), self.router.known_users());
            return RoutingDecision { instance, reason };
        }
        let known = self.router.known_users();
        let instance = self.router.route(query.user_id);
        let reason = if self.router.known_users() > known {
            self.rank_users.push(query.user_id);
            RoutingReason::StickyNew
        } else {
            RoutingReason::StickyExisting
        };
        debug_assert_eq!(self.rank_users.len(), self.router.known_users());
        RoutingDecision { instance, reason }
    }

    /// The arrival-partitioning fast path: on a trace where every arrival carries a
    /// [`workload::StickySeq`] stamp consistent with the router's accumulated
    /// first-appearance history, the assignment of every request is
    /// `user_seq % num_instances` — no per-request hash-map traffic, just one seed
    /// insert per *new* distinct user so later windows (and unstamped traces)
    /// continue from exactly the state the slow path would have left.
    fn route_sorted_trace(
        &mut self,
        arrivals: &[ArrivalPattern],
        num_instances: usize,
    ) -> Option<Vec<RoutingDecision>> {
        if self.elastic {
            return None;
        }
        let new_firsts = self.validate_stamps(arrivals.iter())?;
        let decisions = arrivals
            .iter()
            .map(|arrival| {
                let sticky = arrival.sticky.expect("validated above");
                Self::arithmetic_decision(sticky, num_instances)
            })
            .collect();
        for user in new_firsts {
            self.seed_first(user);
        }
        Some(decisions)
    }

    /// The epoch-batch counterpart of [`Self::route_sorted_trace`]: same
    /// validation, but stamps may extend earlier epochs' history, so the second
    /// and later epochs of a stamped stream keep the arithmetic partition.
    fn route_stamped_batch(
        &mut self,
        batch: &[StreamedArrival],
        num_instances: usize,
        decisions: &mut [RoutingDecision],
    ) -> bool {
        debug_assert_eq!(batch.len(), decisions.len());
        if self.elastic {
            return false;
        }
        let Some(new_firsts) = self.validate_stamps(batch.iter().map(|s| &s.arrival)) else {
            return false;
        };
        for (streamed, slot) in batch.iter().zip(decisions.iter_mut()) {
            let sticky = streamed.arrival.sticky.expect("validated above");
            *slot = Self::arithmetic_decision(sticky, num_instances);
        }
        for user in new_firsts {
            self.seed_first(user);
        }
        true
    }

    /// The sticky fast-path fix for elastic fleets: `user_seq % n` was stamped for
    /// the fleet the trace was generated against; after the first resize it would
    /// silently misroute (or target a drained slot), so the arithmetic path is
    /// retired for good and every later arrival takes the slot-aware slow path.
    fn note_membership_change(&mut self, _routable: &[usize]) {
        self.elastic = true;
    }
}

/// The [`RoutingPolicyKind::LeastLoaded`] policy: stateless argmin over the modelled
/// load key.
struct LeastLoadedPolicy;

impl RoutingPolicy for LeastLoadedPolicy {
    fn kind(&self) -> RoutingPolicyKind {
        RoutingPolicyKind::LeastLoaded
    }

    fn route(&mut self, _query: &RouteQuery<'_>, snapshot: &RouterSnapshot) -> RoutingDecision {
        let instance = snapshot
            .routable()
            .iter()
            .copied()
            .min_by_key(|&slot| snapshot.load_key(slot))
            .expect("snapshots cover at least one routable slot");
        RoutingDecision {
            instance,
            reason: RoutingReason::LeastLoaded,
        }
    }
}

/// The [`RoutingPolicyKind::CacheAware`] policy: deepest discounted prefix hit, load
/// as the tie-break and the fallback.
struct CacheAwarePolicy;

impl RoutingPolicy for CacheAwarePolicy {
    fn kind(&self) -> RoutingPolicyKind {
        RoutingPolicyKind::CacheAware
    }

    fn needs_prefix_probe(&self) -> bool {
        true
    }

    fn route(&mut self, query: &RouteQuery<'_>, snapshot: &RouterSnapshot) -> RoutingDecision {
        // Maximise hit depth over the routable slots; break ties (including the
        // all-zero case) by minimal load key, resolving equal (depth, load) pairs
        // to the lowest slot.  One pass, one chain walk per routable instance.
        let slots = snapshot.routable();
        let mut instance = slots[0];
        let mut best_depth = snapshot.discounted_hit_tokens(instance, query.hashes);
        let mut best_key = snapshot.load_key(instance);
        for &slot in &slots[1..] {
            let depth = snapshot.discounted_hit_tokens(slot, query.hashes);
            let key = snapshot.load_key(slot);
            if depth > best_depth || (depth == best_depth && key < best_key) {
                instance = slot;
                best_depth = depth;
                best_key = key;
            }
        }
        let reason = if best_depth > 0 {
            RoutingReason::DeepestPrefix
        } else {
            RoutingReason::LoadFallback
        };
        RoutingDecision { instance, reason }
    }
}

/// Sticky round-robin router keyed by user id (the engine of the
/// [`RoutingPolicyKind::StickyUser`] policy, kept public as the §7.1 reference
/// implementation).
#[derive(Debug, Clone)]
pub struct UserRouter {
    num_instances: usize,
    assignment: HashMap<u64, usize>,
    next: usize,
}

impl UserRouter {
    /// Creates a router over `num_instances` engine instances.
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::NoInstances`] if `num_instances` is zero — surfaced at
    /// the configuration validation boundary
    /// ([`EngineConfig::validate`](crate::EngineConfig::validate)) rather than as a
    /// panic.
    pub fn new(num_instances: usize) -> Result<UserRouter, RoutingError> {
        if num_instances == 0 {
            return Err(RoutingError::NoInstances);
        }
        Ok(UserRouter {
            num_instances,
            assignment: HashMap::new(),
            next: 0,
        })
    }

    /// Returns the instance index for `user_id`, assigning a new user to the next
    /// instance in round-robin order.
    pub fn route(&mut self, user_id: u64) -> usize {
        if let Some(&instance) = self.assignment.get(&user_id) {
            return instance;
        }
        let instance = self.next;
        self.assignment.insert(user_id, instance);
        self.next = (self.next + 1) % self.num_instances;
        instance
    }

    /// Routes `user_id` over an explicit routable-slot list (ascending instance
    /// indices, non-empty) — the elastic-fleet counterpart of [`Self::route`].  A
    /// user pinned to a still-routable slot keeps it; a new user, or one whose slot
    /// has drained out of the fleet, is (re-)pinned to the next routable slot in
    /// round-robin order.  On the identity slot list `0..n` this behaves exactly
    /// like [`Self::route`].
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty.
    pub fn route_slots(&mut self, user_id: u64, slots: &[usize]) -> usize {
        assert!(
            !slots.is_empty(),
            "routing needs at least one routable slot"
        );
        if let Some(&slot) = self.assignment.get(&user_id) {
            if slots.binary_search(&slot).is_ok() {
                return slot;
            }
        }
        let slot = slots[self.next % slots.len()];
        self.assignment.insert(user_id, slot);
        self.next = (self.next + 1) % slots.len();
        slot
    }

    /// Pins a new user to an instance directly (the sticky fast path, which already
    /// knows the round-robin outcome from the trace's first-appearance ranks) and
    /// advances the round-robin cursor exactly as [`Self::route`] would have.
    fn seed(&mut self, user_id: u64, instance: usize) {
        debug_assert_eq!(instance, self.next, "seeded order must match round-robin");
        self.assignment.insert(user_id, instance);
        self.next = (self.next + 1) % self.num_instances;
    }

    /// Number of instances behind the router.
    pub fn num_instances(&self) -> usize {
        self.num_instances
    }

    /// Number of distinct users seen so far.
    pub fn known_users(&self) -> usize {
        self.assignment.len()
    }

    /// Whether `user_id` is already pinned to an instance.
    pub fn is_known(&self, user_id: u64) -> bool {
        self.assignment.contains_key(&user_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn users_stick_to_their_instance() {
        let mut router = UserRouter::new(2).unwrap();
        let first = router.route(10);
        for _ in 0..5 {
            assert_eq!(router.route(10), first);
        }
        assert_eq!(router.known_users(), 1);
    }

    #[test]
    fn new_users_round_robin() {
        let mut router = UserRouter::new(3).unwrap();
        let assignments: Vec<usize> = (0..9).map(|u| router.route(u)).collect();
        assert_eq!(assignments, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
        assert_eq!(router.num_instances(), 3);
        assert_eq!(router.known_users(), 9);
    }

    #[test]
    fn single_instance_routes_everything_to_zero() {
        let mut router = UserRouter::new(1).unwrap();
        assert!(std::iter::repeat_with(|| router.route(777))
            .take(3)
            .all(|i| i == 0));
        assert_eq!(router.route(888), 0);
    }

    #[test]
    fn zero_instances_is_a_typed_error_not_a_panic() {
        assert_eq!(UserRouter::new(0).unwrap_err(), RoutingError::NoInstances);
        assert!(RoutingPolicyKind::StickyUser.build(0).is_err());
        assert!(RoutingPolicyKind::LeastLoaded.build(0).is_err());
        assert!(RoutingPolicyKind::CacheAware.build(0).is_err());
        assert!(UserRouter::new(0)
            .unwrap_err()
            .to_string()
            .contains("at least one"));
    }

    fn snapshot_with_loads(loads: Vec<InstanceLoad>) -> RouterSnapshot {
        RouterSnapshot::new(loads, Vec::new(), 16, 1 << 20, 0.9, 0.5)
    }

    fn query(user_id: u64, num_tokens: u64) -> RouteQuery<'static> {
        RouteQuery {
            user_id,
            num_tokens,
            hashes: &[],
        }
    }

    #[test]
    fn least_loaded_minimises_tokens_then_queue_then_index() {
        let mut policy = RoutingPolicyKind::LeastLoaded.build(3).unwrap();
        // Distinct token loads: strict argmin.
        let snapshot = snapshot_with_loads(vec![
            InstanceLoad {
                queued_requests: 1,
                outstanding_tokens: 500,
            },
            InstanceLoad {
                queued_requests: 9,
                outstanding_tokens: 100,
            },
            InstanceLoad {
                queued_requests: 0,
                outstanding_tokens: 900,
            },
        ]);
        let d = policy.route(&query(1, 100), &snapshot);
        assert_eq!((d.instance, d.reason), (1, RoutingReason::LeastLoaded));

        // Token tie: fewer queued requests wins.
        let snapshot = snapshot_with_loads(vec![
            InstanceLoad {
                queued_requests: 3,
                outstanding_tokens: 100,
            },
            InstanceLoad {
                queued_requests: 1,
                outstanding_tokens: 100,
            },
        ]);
        assert_eq!(policy.route(&query(1, 100), &snapshot).instance, 1);

        // Full tie: lowest index, deterministically.
        let snapshot = snapshot_with_loads(vec![InstanceLoad::default(); 4]);
        assert_eq!(policy.route(&query(1, 100), &snapshot).instance, 0);
    }

    #[test]
    fn least_loaded_sees_its_own_window_decisions() {
        let mut policy = RoutingPolicyKind::LeastLoaded.build(2).unwrap();
        let mut snapshot = snapshot_with_loads(vec![InstanceLoad::default(); 2]);
        // Empty cluster: first request to 0, then alternating as load accrues.
        let mut routed = Vec::new();
        for (id, tokens) in [(1u64, 1_000u64), (2, 1_000), (3, 1_000), (4, 1_000)] {
            let d = policy.route(&query(id, tokens), &snapshot);
            snapshot.note_routed(d.instance, tokens);
            routed.push(d.instance);
        }
        assert_eq!(routed, vec![0, 1, 0, 1]);
    }

    #[test]
    fn cache_aware_prefers_depth_and_falls_back_to_load() {
        use kvcache::hash_token_blocks;

        let block_size = 16usize;
        let chain: Vec<u32> = (0..128).collect();
        let hashes = hash_token_blocks(&chain, block_size);

        // Instance 1 holds the whole chain on GPU; instance 0 holds it only in the
        // CPU tier (discounted); instance 2 is cold but idle.
        let probe_of = |gpu: &[TokenBlockHash], cpu: &[TokenBlockHash]| {
            kvcache::PrefixProbe::new(
                block_size,
                gpu.iter().copied().collect(),
                cpu.iter().copied().collect(),
                Default::default(),
            )
        };
        let probes = vec![
            probe_of(&[], &hashes),
            probe_of(&hashes, &[]),
            probe_of(&[], &[]),
        ];
        let loads = vec![
            InstanceLoad::default(),
            InstanceLoad {
                queued_requests: 5,
                outstanding_tokens: 50_000,
            },
            InstanceLoad::default(),
        ];
        let snapshot = RouterSnapshot::new(loads, probes, block_size, 1 << 20, 0.8, 0.4);
        let mut policy = RoutingPolicyKind::CacheAware.build(3).unwrap();

        // Full GPU residency beats a discounted CPU hit, load notwithstanding.
        let q = RouteQuery {
            user_id: 7,
            num_tokens: 128,
            hashes: &hashes,
        };
        let d = policy.route(&q, &snapshot);
        assert_eq!((d.instance, d.reason), (1, RoutingReason::DeepestPrefix));

        // A chain nobody holds falls back to load (idle 0 and 2 tie → index 0).
        let cold = hash_token_blocks(&(500_000..500_128u32).collect::<Vec<_>>(), block_size);
        let q = RouteQuery {
            user_id: 8,
            num_tokens: 128,
            hashes: &cold,
        };
        let d = policy.route(&q, &snapshot);
        assert_eq!((d.instance, d.reason), (0, RoutingReason::LoadFallback));
    }

    #[test]
    fn cache_aware_tie_breaks_by_load_then_index() {
        use kvcache::hash_token_blocks;

        let block_size = 16usize;
        let chain: Vec<u32> = (0..64).collect();
        let hashes = hash_token_blocks(&chain, block_size);
        let full_probe = || {
            kvcache::PrefixProbe::new(
                block_size,
                hashes.iter().copied().collect(),
                Default::default(),
                Default::default(),
            )
        };
        // Equal depth everywhere; instance 2 is the least loaded.
        let loads = vec![
            InstanceLoad {
                queued_requests: 2,
                outstanding_tokens: 8_000,
            },
            InstanceLoad {
                queued_requests: 2,
                outstanding_tokens: 8_000,
            },
            InstanceLoad {
                queued_requests: 1,
                outstanding_tokens: 4_000,
            },
        ];
        let snapshot = RouterSnapshot::new(
            loads,
            vec![full_probe(), full_probe(), full_probe()],
            block_size,
            1 << 20,
            0.8,
            0.4,
        );
        let mut policy = RoutingPolicyKind::CacheAware.build(3).unwrap();
        let q = RouteQuery {
            user_id: 1,
            num_tokens: 64,
            hashes: &hashes,
        };
        assert_eq!(policy.route(&q, &snapshot).instance, 2);

        // Equal depth *and* equal load: lowest index, repeatably.
        let even = RouterSnapshot::new(
            vec![InstanceLoad::default(); 3],
            vec![full_probe(), full_probe(), full_probe()],
            block_size,
            1 << 20,
            0.8,
            0.4,
        );
        for _ in 0..3 {
            assert_eq!(policy.route(&q, &even).instance, 0);
        }
    }

    #[test]
    fn sticky_fast_path_accepts_consistent_stamps_and_rejects_inconsistent_ones() {
        use simcore::SimTime;
        use std::sync::Arc;
        use workload::{ArrivalPattern, RequestTemplate, StickySeq};

        let arrival = |user: u64, at_ms: u64, sticky: Option<StickySeq>| ArrivalPattern {
            template: RequestTemplate {
                user_id: user,
                tokens: Arc::new(vec![0; 32]),
                shared_prefix_tokens: 0,
                decode_tokens: 0,
            },
            arrival: SimTime::from_millis(at_ms),
            sticky,
        };
        let stamp = |user_seq: u64, first_of_user: bool| {
            Some(StickySeq {
                user_seq,
                first_of_user,
            })
        };

        // Consistent: firsts ranked 0, 1 and repeats pointing at their own rank.
        let good = vec![
            arrival(7, 0, stamp(0, true)),
            arrival(9, 10, stamp(1, true)),
            arrival(7, 20, stamp(0, false)),
        ];
        let mut policy = RoutingPolicyKind::StickyUser.build(2).unwrap();
        let decisions = policy
            .route_sorted_trace(&good, 2)
            .expect("consistent stamps take the fast path");
        assert_eq!(
            decisions.iter().map(|d| d.instance).collect::<Vec<_>>(),
            vec![0, 1, 0]
        );

        // A user stamped "first" twice would split their requests across instances;
        // the fast path must refuse and leave the router untouched.
        let duplicate_first = vec![
            arrival(7, 0, stamp(0, true)),
            arrival(7, 10, stamp(1, true)),
        ];
        let mut policy = RoutingPolicyKind::StickyUser.build(2).unwrap();
        assert!(policy.route_sorted_trace(&duplicate_first, 2).is_none());
        // ... and because nothing was seeded, a later window still fast-paths.
        assert!(policy.route_sorted_trace(&good, 2).is_some());

        // A repeat stamped with another user's rank is likewise refused.
        let wrong_rank = vec![
            arrival(7, 0, stamp(0, true)),
            arrival(9, 10, stamp(1, true)),
            arrival(9, 20, stamp(0, false)),
        ];
        let mut policy = RoutingPolicyKind::StickyUser.build(2).unwrap();
        assert!(policy.route_sorted_trace(&wrong_rank, 2).is_none());

        // Unstamped arrivals always take the slow path.
        let unstamped = vec![arrival(7, 0, None)];
        let mut policy = RoutingPolicyKind::StickyUser.build(2).unwrap();
        assert!(policy.route_sorted_trace(&unstamped, 2).is_none());
    }

    /// Spliced/truncated-trace edges of the arithmetic fast path: every stamp
    /// inconsistency a cut-and-paste of generated traces can produce must be
    /// detected *before* anything is seeded, so the slow path starts from a clean
    /// router.
    #[test]
    fn sticky_fast_path_rejects_spliced_and_truncated_stamps() {
        use simcore::SimTime;
        use std::sync::Arc;
        use workload::{ArrivalPattern, RequestTemplate, StickySeq};

        let arrival = |user: u64, at_ms: u64, sticky: Option<StickySeq>| ArrivalPattern {
            template: RequestTemplate {
                user_id: user,
                tokens: Arc::new(vec![0; 32]),
                shared_prefix_tokens: 0,
                decode_tokens: 0,
            },
            arrival: SimTime::from_millis(at_ms),
            sticky,
        };
        let stamp = |user_seq: u64, first_of_user: bool| {
            Some(StickySeq {
                user_seq,
                first_of_user,
            })
        };

        let cases: Vec<(&str, Vec<ArrivalPattern>)> = vec![
            (
                // Two *different* users stamped first with the same rank (a splice
                // of two traces' heads): rank 0 repeats.
                "duplicate user_seq across distinct users",
                vec![
                    arrival(7, 0, stamp(0, true)),
                    arrival(9, 10, stamp(0, true)),
                ],
            ),
            (
                // The same user stamped first twice (their requests would split).
                "duplicate first stamp of one user",
                vec![
                    arrival(7, 0, stamp(0, true)),
                    arrival(7, 10, stamp(1, true)),
                ],
            ),
            (
                // A trace whose middle user was cut out: ranks jump 0 → 2.
                "non-contiguous first-appearance ranks",
                vec![
                    arrival(7, 0, stamp(0, true)),
                    arrival(9, 10, stamp(2, true)),
                ],
            ),
            (
                // A truncated trace that lost a user's first arrival: the repeat
                // points at a rank nobody claimed.
                "repeat stamp without its first",
                vec![arrival(9, 0, stamp(0, false))],
            ),
            (
                // Stamped head spliced onto an unstamped tail.
                "stamped-then-unstamped arrivals",
                vec![
                    arrival(7, 0, stamp(0, true)),
                    arrival(9, 10, stamp(1, true)),
                    arrival(7, 20, None),
                ],
            ),
        ];
        let consistent = vec![
            arrival(7, 0, stamp(0, true)),
            arrival(9, 10, stamp(1, true)),
            arrival(7, 20, stamp(0, false)),
        ];
        for (name, trace) in cases {
            let mut policy = RoutingPolicyKind::StickyUser.build(2).unwrap();
            assert!(
                policy.route_sorted_trace(&trace, 2).is_none(),
                "{name} must fall back to the slow path"
            );
            // Rejection must not have seeded anything: a later consistent window
            // still takes the fast path from rank 0.
            assert!(
                policy.route_sorted_trace(&consistent, 2).is_some(),
                "{name} must leave the router untouched"
            );
        }
    }

    /// The streaming counterpart of the whole-trace fast path: a stamped stream
    /// split into epochs must keep the arithmetic partition across epoch
    /// boundaries (where the whole-trace path would bail because users are
    /// already pinned), and the decisions must match the slow path's.
    #[test]
    fn sticky_batch_fast_path_extends_across_epochs() {
        use simcore::SimTime;
        use std::sync::Arc;
        use workload::{ArrivalPattern, RequestTemplate, StickySeq, StreamedArrival};

        let streamed =
            |id: u64, user: u64, at_ms: u64, user_seq: u64, first: bool| StreamedArrival {
                id,
                arrival: ArrivalPattern {
                    template: RequestTemplate {
                        user_id: user,
                        tokens: Arc::new(vec![0; 32]),
                        shared_prefix_tokens: 0,
                        decode_tokens: 0,
                    },
                    arrival: SimTime::from_millis(at_ms),
                    sticky: Some(StickySeq {
                        user_seq,
                        first_of_user: first,
                    }),
                },
            };
        let epoch1 = vec![
            streamed(0, 70, 0, 0, true),
            streamed(1, 90, 5, 1, true),
            streamed(2, 70, 9, 0, false),
        ];
        // Epoch 2 extends the history: a repeat of rank 1 plus a new user at rank 2.
        let epoch2 = vec![streamed(3, 90, 20, 1, false), streamed(4, 55, 24, 2, true)];

        let mut policy = RoutingPolicyKind::StickyUser.build(2).unwrap();
        let noop = RoutingDecision {
            instance: 0,
            reason: RoutingReason::Direct,
        };
        let mut decisions = vec![noop; epoch1.len()];
        assert!(policy.route_stamped_batch(&epoch1, 2, &mut decisions));
        assert_eq!(
            decisions.iter().map(|d| d.instance).collect::<Vec<_>>(),
            vec![0, 1, 0]
        );

        let mut decisions = vec![noop; epoch2.len()];
        assert!(
            policy.route_stamped_batch(&epoch2, 2, &mut decisions),
            "stamps extending earlier epochs' history must keep the fast path"
        );
        assert_eq!(
            decisions
                .iter()
                .map(|d| (d.instance, d.reason))
                .collect::<Vec<_>>(),
            vec![
                (1, RoutingReason::StickyExisting),
                (0, RoutingReason::StickyNew),
            ]
        );

        // A batch restarting ranks at 0 (a fresh trace) must fall back...
        let fresh = vec![streamed(5, 7_000, 30, 0, true)];
        let mut decisions = vec![noop; fresh.len()];
        assert!(!policy.route_stamped_batch(&fresh, 2, &mut decisions));

        // ... and after slow-path routing, stamps that extend the *combined*
        // history (3 firsts so far + slow-routed user 7000 = next rank 4) still
        // fast-path: the rank table is maintained by every routing path.
        let snapshot = snapshot_with_loads(vec![InstanceLoad::default(); 2]);
        let d = policy.route(&query(7_000, 32), &snapshot);
        assert_eq!((d.instance, d.reason), (1, RoutingReason::StickyNew));
        let resumed = vec![
            streamed(6, 11, 40, 4, true),
            streamed(7, 7_000, 44, 3, false),
        ];
        let mut decisions = vec![noop; resumed.len()];
        assert!(policy.route_stamped_batch(&resumed, 2, &mut decisions));
        assert_eq!(
            decisions.iter().map(|d| d.instance).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn load_policies_route_only_over_routable_slots() {
        use kvcache::hash_token_blocks;

        // Slot 0 is idle but unroutable (draining): least-loaded must pick the
        // best *routable* slot, tie-breaking by slot index as before.
        let mut policy = RoutingPolicyKind::LeastLoaded.build(3).unwrap();
        let snapshot = snapshot_with_loads(vec![
            InstanceLoad::default(),
            InstanceLoad {
                queued_requests: 2,
                outstanding_tokens: 300,
            },
            InstanceLoad {
                queued_requests: 1,
                outstanding_tokens: 100,
            },
        ])
        .with_routable_slots(vec![1, 2]);
        assert_eq!(policy.route(&query(1, 50), &snapshot).instance, 2);

        // Cache-aware: the deepest hit lives on the unroutable slot; the policy
        // must settle for the deepest hit among the routable ones.
        let block_size = 16usize;
        let chain: Vec<u32> = (0..64).collect();
        let hashes = hash_token_blocks(&chain, block_size);
        let probe_of = |gpu: &[TokenBlockHash]| {
            kvcache::PrefixProbe::new(
                block_size,
                gpu.iter().copied().collect(),
                Default::default(),
                Default::default(),
            )
        };
        let probes = vec![probe_of(&hashes), probe_of(&hashes[..2]), probe_of(&[])];
        let snapshot = RouterSnapshot::new(
            vec![InstanceLoad::default(); 3],
            probes,
            block_size,
            1 << 20,
            0.8,
            0.4,
        )
        .with_routable_slots(vec![1, 2]);
        let mut policy = RoutingPolicyKind::CacheAware.build(3).unwrap();
        let q = RouteQuery {
            user_id: 3,
            num_tokens: 64,
            hashes: &hashes,
        };
        let d = policy.route(&q, &snapshot);
        assert_eq!((d.instance, d.reason), (1, RoutingReason::DeepestPrefix));
    }

    #[test]
    fn membership_change_retires_the_sticky_fast_path_and_repins_drained_users() {
        use simcore::SimTime;
        use std::sync::Arc;
        use workload::{ArrivalPattern, RequestTemplate, StickySeq, StreamedArrival};

        let streamed =
            |id: u64, user: u64, at_ms: u64, user_seq: u64, first: bool| StreamedArrival {
                id,
                arrival: ArrivalPattern {
                    template: RequestTemplate {
                        user_id: user,
                        tokens: Arc::new(vec![0; 32]),
                        shared_prefix_tokens: 0,
                        decode_tokens: 0,
                    },
                    arrival: SimTime::from_millis(at_ms),
                    sticky: Some(StickySeq {
                        user_seq,
                        first_of_user: first,
                    }),
                },
            };
        let mut policy = RoutingPolicyKind::StickyUser.build(2).unwrap();
        let noop = RoutingDecision {
            instance: 0,
            reason: RoutingReason::Direct,
        };

        // Pre-resize: users 10 → slot 0, 20 → slot 1 via the arithmetic fast path.
        let epoch1 = vec![streamed(0, 10, 0, 0, true), streamed(1, 20, 5, 1, true)];
        let mut decisions = vec![noop; epoch1.len()];
        assert!(policy.route_stamped_batch(&epoch1, 2, &mut decisions));
        assert_eq!(
            decisions.iter().map(|d| d.instance).collect::<Vec<_>>(),
            vec![0, 1]
        );

        // Slot 1 drains out.  Even perfectly consistent stamps must now refuse the
        // fast path — `user_seq % n` would route rank-1 users onto the leaver.
        policy.note_membership_change(&[0]);
        let epoch2 = vec![streamed(2, 20, 10, 1, false), streamed(3, 30, 12, 2, true)];
        let mut decisions = vec![noop; epoch2.len()];
        assert!(
            !policy.route_stamped_batch(&epoch2, 2, &mut decisions),
            "resized fleets must take the slot-aware slow path"
        );
        assert!(policy
            .route_sorted_trace(&[epoch2[0].arrival.clone()], 2)
            .is_none());

        // Slow path: user 20's pin (slot 1) is gone → re-pinned to a routable slot,
        // still labelled an existing user; user 10 keeps slot 0.
        let snapshot =
            snapshot_with_loads(vec![InstanceLoad::default(); 2]).with_routable_slots(vec![0]);
        let d = policy.route(&query(20, 32), &snapshot);
        assert_eq!((d.instance, d.reason), (0, RoutingReason::StickyExisting));
        let d = policy.route(&query(10, 32), &snapshot);
        assert_eq!((d.instance, d.reason), (0, RoutingReason::StickyExisting));

        // The fleet grows to three slots: new users round-robin over the routable
        // list, and the re-pinned user 20 sticks to its new home.
        let snapshot =
            snapshot_with_loads(vec![InstanceLoad::default(); 3]).with_routable_slots(vec![0, 2]);
        let d = policy.route(&query(40, 32), &snapshot);
        assert_eq!(d.reason, RoutingReason::StickyNew);
        let first_new = d.instance;
        let d = policy.route(&query(50, 32), &snapshot);
        assert_eq!(d.reason, RoutingReason::StickyNew);
        assert_ne!(d.instance, first_new, "new users spread round-robin");
        assert_eq!(policy.route(&query(20, 32), &snapshot).instance, 0);
    }

    #[test]
    fn sticky_policy_matches_the_user_router_and_labels_reasons() {
        let mut policy = RoutingPolicyKind::StickyUser.build(2).unwrap();
        let mut reference = UserRouter::new(2).unwrap();
        let snapshot = snapshot_with_loads(vec![InstanceLoad::default(); 2]);
        for (user, expect_new) in [(5u64, true), (9, true), (5, false), (7, true), (9, false)] {
            let d = policy.route(&query(user, 1_000), &snapshot);
            assert_eq!(d.instance, reference.route(user));
            assert_eq!(
                d.reason,
                if expect_new {
                    RoutingReason::StickyNew
                } else {
                    RoutingReason::StickyExisting
                }
            );
        }
    }
}

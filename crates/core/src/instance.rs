//! A single engine instance: executor + KV-cache manager + scheduler.
//!
//! One instance corresponds to one engine process in the paper's deployment: a single
//! GPU for PrefillOnly / PagedAttention / chunked prefill, or both GPUs for the TP / PP
//! baselines.  The [`crate::Cluster`] owns several instances plus the router and drives
//! them from a discrete-event loop; the instance itself only knows how to enqueue,
//! start and complete requests against virtual time.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

use executor::{max_input_length, profile_jct_grid, Executor};
use gpu::{HostLink, NetLink};
use kvcache::{
    hash_token_blocks, CacheStats, KvCacheManager, NetKvPool, OffloadStats, PrefixProbeCache,
    ProbeCache, ReloadQuote, ReloadTier, RequestKv, RetentionPolicy, SequenceGrowth, TierHits,
    TokenBlockHash,
};
use scheduler::{CacheProbe, JctEstimator, SchedulingPolicy, WaitingQueue, WaitingRequest};
use workload::InstanceRole;

use crate::config::{EngineConfig, ReloadPolicyKind};
use crate::report::RequestRecord;
use crate::request::PrefillRequest;
use crate::routing::InstanceLoad;

/// Cumulative per-instance statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct InstanceStats {
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected (would not fit even with an empty cache).
    pub rejected: u64,
    /// Total GPU busy time accumulated across stages.
    pub busy: SimDuration,
}

/// A request admitted to execution, as seen by the cluster's event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartedRequest {
    /// The admitted request's id.
    pub request_id: u64,
    /// When its single output token will be ready.
    pub completion: SimTime,
}

struct RunningRequest {
    request: PrefillRequest,
    kv: RequestKv,
    started: SimTime,
    /// When the prefill pass finished and the first output token appeared.
    /// Equals `completion` for prefill-only requests.
    first_token: SimTime,
    completion: SimTime,
    /// Set on a `Prefill`-role instance: the request stops at its first token and
    /// emits a KV handoff instead of a record (it never decodes here, so it is not
    /// a decode batchmate either).
    emit_handoff: bool,
    /// Set on the decode side of a handoff: prefill-side residency stats and the
    /// bytes that crossed the fabric, folded into the final record.
    carried: Option<HandoffCarry>,
}

/// Prefill-side facts a handed-off request carries to its decode slot, so the final
/// [`RequestRecord`] reports the residency the *prefill* pass actually saw.
#[derive(Debug, Clone, Copy)]
struct HandoffCarry {
    prefill_slot: usize,
    bytes: u64,
    cached_tokens: u64,
    reloaded_tokens: u64,
    net_reloaded_tokens: u64,
    net_propagated_tokens: u64,
}

/// The prefill side's half of a disaggregated request: everything a decode-capable
/// slot needs to admit the whole reserved chain and price the decode schedule.
///
/// Emitted by a `Prefill`-role instance when a decode-bearing request reaches its
/// first token; drained by the cluster at the next propagation-epoch boundary
/// ([`EngineInstance::take_handoffs`]) into the
/// [`kvcache::HandoffLedger`].
#[derive(Debug, Clone)]
pub struct KvHandoff {
    /// The original request (tokens, decode budget, routing provenance).
    pub request: PrefillRequest,
    /// Slot that ran the prefill pass.
    pub prefill_slot: usize,
    /// When the prefill side admitted the request.
    pub started: SimTime,
    /// First-token time on the prefill side — TTFT is pinned here, and the fabric
    /// transfer starts here.
    pub first_token: SimTime,
    /// Whole reserved chain size in blocks (prompt + [`SequenceGrowth`] reservation).
    pub blocks: u64,
    /// Bytes that cross the fabric (`blocks × block_bytes`).
    pub bytes: u64,
    /// When the chain has fully arrived at a decode slot.
    pub ready_at: SimTime,
    /// GPU-resident prompt tokens the prefill pass reused.
    pub cached_tokens: u64,
    /// Prompt tokens rehydrated over the host link on the prefill side.
    pub reloaded_tokens: u64,
    /// Prompt tokens rehydrated over the network tier on the prefill side.
    pub net_reloaded_tokens: u64,
    /// The mid-window-propagation subset of `net_reloaded_tokens`.
    pub net_propagated_tokens: u64,
}

/// Outcome of offering a [`KvHandoff`] to a decode-capable instance.
#[derive(Debug)]
pub enum HandoffAdmission {
    /// The chain was admitted; the decode schedule is priced and the started
    /// request carries its completion time.
    Admitted(StartedRequest),
    /// Transient KV pressure: running requests still pin their blocks.  The cluster
    /// re-enqueues the handoff and retries at the next epoch boundary.
    Retry(KvHandoff),
    /// The whole reserved chain exceeds even an empty pool — counted as rejected.
    Rejected,
}

/// Tokens a tiered prefix hit is worth to the JCT estimator.
///
/// GPU hits count in full.  CPU and network hits are discounted by their tier's
/// reload-vs-recompute cost ratio: rehydrating a token over a link is not free, so a
/// tier-resident token only saves `1 − reload/recompute` of its computation time —
/// with the network link slower than the host link, remote hits are discounted more
/// deeply than CPU hits.  Both are further capped by the pool space left next to the
/// tiers above them — allocation can only rehydrate blocks it can make resident, so
/// crediting more would under-estimate the JCT of tier-warm requests larger than the
/// pool.  With all of this folded in, calibrated SRJF ranks a tier-warm long request
/// exactly as far ahead as the transfers actually make it (and ignores a tier
/// entirely on hosts where its link is no cheaper than recomputing).
pub(crate) fn effective_cached_tokens(
    hits: TierHits,
    pool_capacity_blocks: u64,
    block_size: usize,
    cpu_hit_discount: f64,
    net_hit_discount: f64,
) -> u64 {
    let gpu_blocks = hits.gpu_blocks as u64;
    let gpu = gpu_blocks * block_size as u64;
    let cpu_reloadable =
        (hits.cpu_blocks as u64).min(pool_capacity_blocks.saturating_sub(gpu_blocks));
    let cpu = cpu_reloadable * block_size as u64;
    let net_reloadable = (hits.net_blocks as u64)
        .min(pool_capacity_blocks.saturating_sub(gpu_blocks + cpu_reloadable));
    let net = net_reloadable * block_size as u64;
    gpu + (cpu as f64 * cpu_hit_discount) as u64 + (net as f64 * net_hit_discount) as u64
}

/// The outcome of one instance profile run (§3.1 / §6.3): everything about an
/// instance that is a pure function of its [`EngineConfig`].
///
/// Instances of one deployment are identical, so [`crate::Cluster::new`] runs the
/// profile **once** and builds every instance from the shared result
/// ([`EngineInstance::with_profile`]) instead of re-profiling per instance — pinned
/// bit-identical to per-instance profiling by the
/// `shared_profile_is_bit_identical_to_per_instance_profiling` test.
#[derive(Debug, Clone)]
pub struct InstanceProfile {
    executor: Executor,
    max_input_length: u64,
    pool_blocks: u64,
    /// Bytes of full KV (all layers, all shards) per block — what crosses a link to
    /// rehydrate one block.
    block_bytes: u64,
    estimator: JctEstimator,
    cpu_hit_discount: f64,
    net_hit_discount: f64,
}

impl InstanceProfile {
    /// Runs the profile for one instance of the deployment described by `config`:
    /// derives the maximum input length, reserves activation memory for the longest
    /// admissible request, dedicates the remaining GPU memory to the prefix-cache KV
    /// pool, fits the JCT estimator over the profiling grid, and derives the per-tier
    /// reload discounts.
    pub fn new(config: &EngineConfig) -> InstanceProfile {
        let executor = Executor::new(config.executor_config());
        let mil = max_input_length(&executor, config.profile_granularity);
        let effective_max = config.max_model_len.min(mil).max(1);

        // Profile run: size the KV pool from what is left after the longest request.
        let pool_bytes_per_gpu = executor.kv_pool_bytes_per_gpu(effective_max);
        let kv_per_token_per_gpu = executor.kv_bytes_per_token_per_gpu().max(1);
        let pool_tokens = pool_bytes_per_gpu / kv_per_token_per_gpu;
        let pool_blocks = (pool_tokens / config.block_size as u64).max(1);
        // A spilled/reloaded block carries the *full* KV of its tokens (all layers,
        // all shards) — that is what must cross PCIe or the network to rehydrate it.
        let kv_bytes_per_token = executor.config().model.kv_bytes_per_token().max(1);
        let block_bytes = kv_bytes_per_token * config.block_size as u64;

        // JCT profile (§6.3): grid over (n_input, n_cached) at 1,000-token granularity,
        // then fit the cache-miss-token proxy the paper uses by default.
        let granularity = config.profile_granularity.min(effective_max).max(1);
        let grid = profile_jct_grid(&executor, effective_max, granularity);
        let samples: Vec<(f64, f64, f64)> = grid
            .iter()
            .map(|p| (p.n_input as f64, p.n_cached as f64, p.jct_secs))
            .collect();
        let estimator = JctEstimator::fit_proxy(&samples).unwrap_or_else(|| {
            // Degenerate profile (single feasible length): fall back to a direct
            // per-token cost measurement.
            let jct = executor.forward_time(effective_max, 0).total.as_secs_f64();
            JctEstimator::proxy(jct / effective_max as f64, 0.0)
        });

        // Per-tier reload-vs-recompute trade-off, folded into the JCT probe: a
        // tier-resident token hit saves the recompute time minus its link's transfer
        // time.  The recompute rate comes from the fitted estimator itself (the
        // marginal cost of one more uncached token), so the discounts stay consistent
        // with the scores the scheduler compares.
        let recompute_secs_per_token =
            ((estimator.estimate(2_000, 0) - estimator.estimate(1_000, 0)) / 1_000.0).max(1e-12);
        let reload_secs_per_token =
            HostLink::new(config.host_link).secs_per_byte() * kv_bytes_per_token as f64;
        let cpu_hit_discount =
            (1.0 - reload_secs_per_token / recompute_secs_per_token).clamp(0.0, 1.0);
        let net_reload_secs_per_token =
            NetLink::new(config.net_link).secs_per_byte() * kv_bytes_per_token as f64;
        let net_hit_discount =
            (1.0 - net_reload_secs_per_token / recompute_secs_per_token).clamp(0.0, 1.0);

        InstanceProfile {
            executor,
            max_input_length: mil,
            pool_blocks,
            block_bytes,
            estimator,
            cpu_hit_discount,
            net_hit_discount,
        }
    }

    /// Maximum input length of the profiled instance (Table 2).
    pub fn max_input_length(&self) -> u64 {
        self.max_input_length
    }

    /// The fitted JCT estimator.
    pub fn jct_estimator(&self) -> JctEstimator {
        self.estimator
    }

    /// Bytes of full KV per block (what a spill or reload moves per block).
    pub fn kv_block_bytes(&self) -> u64 {
        self.block_bytes
    }
}

/// One serving-engine instance.
pub struct EngineInstance {
    id: usize,
    executor: Executor,
    kv: KvCacheManager,
    policy: Box<dyn SchedulingPolicy + Send + Sync>,
    estimator: JctEstimator,
    retention: RetentionPolicy,
    queue: WaitingQueue,
    pending_hashes: HashMap<u64, Arc<Vec<TokenBlockHash>>>,
    pending_requests: HashMap<u64, PrefillRequest>,
    /// Memoised cache-probe results per waiting request, keyed by the KV manager's
    /// generation counters.  `RefCell` because the probe is handed to the scheduling
    /// policy behind an immutable [`CacheProbe`] reference.
    probe_cache: RefCell<ProbeCache>,
    /// Incrementally maintained routing-probe capture (copy-on-write per tier, keyed
    /// by the same generation counters) — [`Self::prefix_probe`] reuses unchanged
    /// tiers instead of cloning every resident set per capture.  `RefCell` because
    /// captures go through `&self`.
    probe_snapshots: RefCell<PrefixProbeCache>,
    running: HashMap<u64, RunningRequest>,
    stage_free_at: Vec<SimTime>,
    max_input_length: u64,
    /// Bytes of full KV per block, as profiled — the geometry every tier pool was
    /// built with.
    block_bytes: u64,
    /// Host↔device link KV blocks cross when spilled to / reloaded from the CPU tier.
    host_link: HostLink,
    /// Network link KV blocks cross when reloaded from the cluster-shared tier.
    net_link: NetLink,
    /// JCT-estimator weight of a CPU-tier token hit, in `[0, 1]` (see
    /// [`effective_cached_tokens`]).
    cpu_hit_discount: f64,
    /// JCT-estimator weight of a network-tier token hit, in `[0, 1]`.
    net_hit_discount: f64,
    /// How reload-vs-recompute is decided per reloadable segment.
    reload_policy: ReloadPolicyKind,
    /// Which serving phase(s) this instance runs (see [`InstanceRole`]).
    role: InstanceRole,
    /// KV handoffs emitted since the cluster last drained them (prefill role only).
    outbox: Vec<KvHandoff>,
    stats: InstanceStats,
}

/// The engine-side [`CacheProbe`]: answers "how many tokens of this waiting request
/// currently hit the prefix cache" from the memoised [`ProbeCache`], which degrades to
/// a hash-chain walk only when the cache contents actually changed (and only from the
/// previously hit depth when nothing was evicted).
struct KvCacheProbe<'a> {
    kv: &'a KvCacheManager,
    hashes: &'a HashMap<u64, Arc<Vec<TokenBlockHash>>>,
    memo: &'a RefCell<ProbeCache>,
    cpu_hit_discount: f64,
    net_hit_discount: f64,
}

impl CacheProbe for KvCacheProbe<'_> {
    fn cached_tokens(&self, request: &WaitingRequest) -> u64 {
        self.hashes
            .get(&request.id)
            .map(|hashes| {
                let hits = self
                    .memo
                    .borrow_mut()
                    .tier_hits(self.kv, request.id, hashes);
                effective_cached_tokens(
                    hits,
                    self.kv.capacity_blocks(),
                    self.kv.block_size(),
                    self.cpu_hit_discount,
                    self.net_hit_discount,
                )
            })
            .unwrap_or(0)
    }
}

impl EngineInstance {
    /// Builds instance `id` of the deployment described by `config`, running a
    /// private profile run ([`InstanceProfile::new`]).
    ///
    /// Deployments with several identical instances should profile once and use
    /// [`Self::with_profile`] instead — [`crate::Cluster::new`] does.
    pub fn new(config: &EngineConfig, id: usize) -> EngineInstance {
        Self::with_profile(config, &InstanceProfile::new(config), id)
    }

    /// Builds instance `id` from an already-computed [`InstanceProfile`] (identical
    /// instances of one deployment share a single profile run).
    pub fn with_profile(
        config: &EngineConfig,
        profile: &InstanceProfile,
        id: usize,
    ) -> EngineInstance {
        let executor = profile.executor.clone();
        // Hierarchical tiers (§9): eviction victims spill to host memory and reload
        // over the host link; CPU eviction victims cascade into the cluster-shared
        // network tier, whose snapshot the cluster installs around each replay
        // window (a standalone instance gets a private pool here).
        let mut kv = KvCacheManager::with_offload(
            profile.pool_blocks,
            config.block_size,
            config.cpu_kv_capacity_bytes,
            profile.block_bytes,
        );
        if config.net_kv_capacity_bytes > 0 {
            kv.install_net_pool(NetKvPool::new(
                config.net_kv_capacity_bytes,
                profile.block_bytes,
            ));
        }

        let retention = if config.kind.strategy().requires_full_kv_residency() {
            RetentionPolicy::FullResidency
        } else {
            RetentionPolicy::PrefixBestEffort
        };
        let stages = executor.config().parallelism.num_stages() as usize;

        EngineInstance {
            id,
            policy: config.kind.policy().build(profile.estimator),
            estimator: profile.estimator,
            executor,
            kv,
            retention,
            queue: WaitingQueue::new(),
            pending_hashes: HashMap::new(),
            pending_requests: HashMap::new(),
            probe_cache: RefCell::new(ProbeCache::new()),
            probe_snapshots: RefCell::new(PrefixProbeCache::new()),
            running: HashMap::new(),
            stage_free_at: vec![SimTime::ZERO; stages],
            max_input_length: profile.max_input_length,
            block_bytes: profile.block_bytes,
            host_link: HostLink::new(config.host_link),
            net_link: NetLink::new(config.net_link),
            cpu_hit_discount: profile.cpu_hit_discount,
            net_hit_discount: profile.net_hit_discount,
            reload_policy: config.reload_policy,
            role: config.role_of(id),
            outbox: Vec::new(),
            stats: InstanceStats::default(),
        }
    }

    /// Instance index within the cluster.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The serving phase(s) this instance runs.
    pub fn role(&self) -> InstanceRole {
        self.role
    }

    /// Overrides the instance's role (elastic joins carry a role in their
    /// membership event; slot reuse rebuilds the instance and then re-stamps it).
    pub fn set_role(&mut self, role: InstanceRole) {
        self.role = role;
    }

    /// Drains the KV handoffs emitted since the last call (prefill role only;
    /// always empty on colocated and decode instances).
    pub fn take_handoffs(&mut self) -> Vec<KvHandoff> {
        std::mem::take(&mut self.outbox)
    }

    /// The executor used by this instance.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The fitted JCT estimator.
    pub fn jct_estimator(&self) -> JctEstimator {
        self.estimator
    }

    /// Maximum input length this instance can execute (Table 2).
    pub fn max_input_length(&self) -> u64 {
        self.max_input_length
    }

    /// Capacity of the prefix-cache pool, in tokens.
    pub fn kv_pool_tokens(&self) -> u64 {
        self.kv.capacity_blocks() * self.kv.block_size() as u64
    }

    /// Number of requests waiting to be scheduled.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of requests currently executing.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> InstanceStats {
        self.stats
    }

    /// Prefix-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.kv.stats()
    }

    /// CPU-tier (hierarchical cache) statistics; all zero when offload is disabled.
    pub fn offload_stats(&self) -> OffloadStats {
        self.kv.offload_stats()
    }

    /// GPU-resident (committed, reusable) prefix-cache blocks right now.
    pub fn gpu_cached_blocks(&self) -> u64 {
        self.kv.cached_blocks()
    }

    /// CPU-tier resident blocks right now (0 when offload is disabled).
    pub fn cpu_resident_blocks(&self) -> u64 {
        self.kv.cpu_resident_blocks()
    }

    /// The JCT-estimator weight of a CPU-tier token hit (0 = reloading is no cheaper
    /// than recomputing, 1 = reloading is free).
    pub fn cpu_hit_discount(&self) -> f64 {
        self.cpu_hit_discount
    }

    /// The JCT-estimator weight of a network-tier token hit (same scale as
    /// [`Self::cpu_hit_discount`], but over the slower network link).
    pub fn net_hit_discount(&self) -> f64 {
        self.net_hit_discount
    }

    /// Bytes of full KV per block (what a spill or reload moves per block) — the
    /// [`InstanceProfile::kv_block_bytes`] value the KV pools were built with.
    pub fn kv_block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Installs this instance's snapshot of the cluster-shared network KV tier for
    /// the next replay window (see [`NetKvPool`]'s snapshot-merge semantics).
    pub fn install_net_pool(&mut self, pool: NetKvPool) {
        self.kv.install_net_pool(pool);
    }

    /// Installs a copy-on-write view of the cluster-shared network KV tier (see
    /// [`kvcache::NetPoolView`]); `content_unchanged` forwards the cluster's proof
    /// that this install is observationally identical to the previous one, keeping
    /// routing-probe memoisation warm across the boundary.
    pub fn install_net_view(&mut self, view: kvcache::NetPoolView, content_unchanged: bool) {
        self.kv.install_net_view(view, content_unchanged);
    }

    /// Harvests the network-tier snapshot (with this instance's spills applied) so
    /// the cluster can merge it back into the shared pool.
    pub fn take_net_pool(&mut self) -> Option<NetKvPool> {
        self.kv.take_net_pool()
    }

    /// Harvests the network-tier view without materialising it (the delta-merge
    /// boundary path; see [`kvcache::KvCacheManager::take_net_view`]).
    pub fn take_net_view(&mut self) -> Option<kvcache::NetPoolView> {
        self.kv.take_net_view()
    }

    /// The currently installed network-tier snapshot, if any.
    pub fn net_pool(&self) -> Option<&kvcache::NetPoolView> {
        self.kv.net_pool()
    }

    /// Publishes this instance's reusable KV into its installed network-tier
    /// snapshot — the drain-to-net handoff of a leaving instance (see
    /// [`kvcache::KvCacheManager::drain_to_net`]).  A no-op without an installed
    /// snapshot (detached slots, tierless deployments).
    pub fn drain_to_net(&mut self, now: SimTime) -> kvcache::DrainSpill {
        self.kv.drain_to_net(now)
    }

    /// The instance's modelled load as the routing layer sees it: waiting plus
    /// running requests and their input tokens.  The queue half is O(1)
    /// ([`WaitingQueue::total_tokens`]); the running half iterates the (small) set of
    /// in-flight requests.
    pub fn router_load(&self) -> InstanceLoad {
        let running_tokens: u64 = self.running.values().map(|r| r.request.num_tokens()).sum();
        InstanceLoad {
            queued_requests: (self.queue.len() + self.running.len()) as u64,
            outstanding_tokens: self.queue.total_tokens() + running_tokens,
        }
    }

    /// An immutable three-tier residency snapshot of this instance's KV manager (see
    /// [`kvcache::PrefixProbe`]) — what cache-aware routing probes at the start of
    /// each replay window or propagation epoch.  Maintained incrementally: a tier
    /// whose generation counter is unchanged since the previous capture is reused
    /// (one `Arc` clone) instead of re-collected.
    pub fn prefix_probe(&self) -> kvcache::PrefixProbe {
        self.probe_snapshots.borrow_mut().probe(&self.kv)
    }

    /// Earliest virtual time at which a new request could be admitted (when the first
    /// pipeline stage becomes free).
    pub fn next_admission_time(&self) -> SimTime {
        self.stage_free_at[0]
    }

    /// Whether a request of `tokens` tokens can be executed by this instance at all.
    pub fn can_serve(&self, tokens: u64) -> bool {
        tokens <= self.max_input_length
    }

    /// Adds a request to the waiting queue.
    ///
    /// The request's block-hash chain is computed once here; every later cache probe
    /// (continuous JCT calibration runs one per waiting request per scheduling step)
    /// reuses it.
    pub fn enqueue(&mut self, request: PrefillRequest, now: SimTime) {
        self.enqueue_with_hashes(request, None, now);
    }

    /// Like [`Self::enqueue`], but reusing a block-hash chain the caller already
    /// computed (cache-aware routing hashes every arrival to probe instances, so the
    /// cluster hands the chain through rather than hashing the tokens twice).
    ///
    /// `hashes` must be `hash_token_blocks(&request.tokens, block_size)` for this
    /// instance's block size; pass `None` to compute it here.
    pub fn enqueue_with_hashes(
        &mut self,
        request: PrefillRequest,
        hashes: Option<Arc<Vec<TokenBlockHash>>>,
        now: SimTime,
    ) {
        let hashes = hashes
            .unwrap_or_else(|| Arc::new(hash_token_blocks(&request.tokens, self.kv.block_size())));
        debug_assert_eq!(
            hashes.len(),
            request.tokens.len() / self.kv.block_size(),
            "precomputed chain must match the instance's block geometry"
        );
        // The arrival-time probe doubles as the seed of the memoised probe cache, so
        // the first scheduling step already starts from a known hit depth.
        let hits_at_arrival = self
            .probe_cache
            .borrow_mut()
            .tier_hits(&self.kv, request.id, &hashes);
        let cached_at_arrival = effective_cached_tokens(
            hits_at_arrival,
            self.kv.capacity_blocks(),
            self.kv.block_size(),
            self.cpu_hit_discount,
            self.net_hit_discount,
        );
        self.queue.push(WaitingRequest {
            id: request.id,
            arrival: now,
            total_tokens: request.num_tokens(),
            decode_tokens: request.decode_tokens,
            cached_tokens_at_arrival: cached_at_arrival,
        });
        self.pending_hashes.insert(request.id, hashes);
        self.pending_requests.insert(request.id, request);
    }

    /// Attempts to admit the next request according to the scheduling policy.
    ///
    /// Returns `None` when the queue is empty or the first pipeline stage is still
    /// busy.  Requests that cannot be executed (longer than the instance's MIL, or KV
    /// allocation failure under full residency) are dropped and counted as rejected.
    pub fn try_start(&mut self, now: SimTime) -> Option<StartedRequest> {
        loop {
            if self.queue.is_empty() || self.stage_free_at[0] > now {
                return None;
            }
            let selected = {
                let probe = KvCacheProbe {
                    kv: &self.kv,
                    hashes: &self.pending_hashes,
                    memo: &self.probe_cache,
                    cpu_hit_discount: self.cpu_hit_discount,
                    net_hit_discount: self.net_hit_discount,
                };
                self.policy.select(self.queue.requests(), now, &probe)?
            };
            let waiting = self.queue.remove(selected);
            self.probe_cache.borrow_mut().forget(waiting.id);
            let hashes = self
                .pending_hashes
                .remove(&waiting.id)
                .expect("waiting request must have a hash chain");
            let request = self
                .pending_requests
                .remove(&waiting.id)
                .expect("waiting request must have a pending entry");

            if !self.can_serve(request.num_tokens()) {
                self.stats.rejected += 1;
                continue;
            }
            // Per-request reload-vs-recompute decision (the `Modeled` policy): a
            // reloadable segment is fetched over its tier's link only if the
            // modelled transfer time at the observed hit depth beats the modelled
            // recompute saving — both derived from the same executor cost model the
            // engine charges with, so the decision and the charge cannot drift.
            let executor = &self.executor;
            let host_link = self.host_link;
            let net_link = self.net_link;
            let block_size = self.kv.block_size() as u64;
            let always_reload = self.reload_policy == ReloadPolicyKind::Always;
            let mut decide = |quote: &ReloadQuote| -> bool {
                if always_reload {
                    return true;
                }
                let seg_tokens = quote.blocks * block_size;
                let rem_before = (quote.total_tokens - quote.resident_prefix_tokens).max(1);
                let rem_after = rem_before.saturating_sub(seg_tokens).max(1);
                let before = executor
                    .forward_time(rem_before, quote.resident_prefix_tokens)
                    .total
                    .as_secs_f64();
                let after = executor
                    .forward_time(rem_after, quote.resident_prefix_tokens + seg_tokens)
                    .total
                    .as_secs_f64();
                let saving = before - after;
                let transfer = match quote.tier {
                    ReloadTier::Cpu => host_link.transfer_time(quote.bytes),
                    ReloadTier::Net => net_link.transfer_time(quote.bytes),
                }
                .as_secs_f64();
                transfer < saving
            };
            // On a dedicated-prefill instance a decode-bearing request stops at its
            // first token and hands the reserved chain to a decode slot, so only the
            // *prompt* chain is allocated (and later committed) here — the decode
            // growth is reserved on the admitting decode instance instead.
            let emit_handoff = self.role == InstanceRole::Prefill && request.decode_tokens > 0;
            let prompt_chain_blocks = (request.prompt_tokens() / block_size) as usize;
            let (alloc_hashes, alloc_tokens) = if emit_handoff {
                (&hashes[..prompt_chain_blocks], request.prompt_tokens())
            } else {
                (&hashes[..], request.num_tokens())
            };
            let kv_alloc = match self.kv.allocate_from_hashes_with_policy(
                alloc_hashes,
                alloc_tokens,
                now,
                self.retention,
                &mut decide,
            ) {
                Ok(alloc) => alloc,
                Err(err) => {
                    if err.needed_blocks > self.kv.capacity_blocks() {
                        // Even an empty pool could not hold this request: reject it.
                        self.stats.rejected += 1;
                        continue;
                    }
                    // Transient pressure: other running requests still pin their KV
                    // blocks.  Put the request back and wait for a completion to free
                    // references (the cluster re-attempts admission on every event).
                    self.queue.push(waiting);
                    self.pending_hashes.insert(waiting.id, hashes);
                    self.pending_requests.insert(waiting.id, request);
                    return None;
                }
            };

            let cached = kv_alloc.cached_tokens();
            let reloaded = kv_alloc.reloaded_tokens();
            let net_reloaded = kv_alloc.net_reloaded_tokens();
            // The allocation spans the *full* sequence (prompt plus decoded reply —
            // the hash chain covers both so a later turn re-hits its own reply), but
            // the prefill pass only forwards prompt tokens.  Clamp the residency
            // credit to the prompt: decoded tokens are priced per decode step below
            // even when an identical earlier sequence left their KV resident.  For
            // prefill-only requests this degenerates to exactly the pre-decode cost.
            let prompt_tokens = request.prompt_tokens();
            let prefill_resident = (cached + reloaded + net_reloaded).min(prompt_tokens);
            let prefill_new = (prompt_tokens - prefill_resident).max(1);
            // Reloaded tokens behave like cache hits to the model (their KV exists;
            // only uncached tokens are forwarded) but charge their tier's link
            // transfer, serialised before the first stage's compute — the attention
            // over the reloaded prefix cannot start until its KV is device-resident.
            let breakdown = self.executor.forward_time(prefill_new, prefill_resident);
            let reload_transfer = self.host_link.transfer_time(kv_alloc.reloaded_bytes())
                + self.net_link.transfer_time(kv_alloc.net_reloaded_bytes());

            // Continuous batching (iteration-level scheduling): requests that are
            // still producing decode tokens at admission time form the decode batch
            // this request joins.  `HashMap` iteration order is unspecified, but
            // both uses below are order-independent (a count and a sum).
            let batchmates: u64 = self
                .running
                .values()
                .filter(|r| r.request.decode_tokens > 0 && !r.emit_handoff && r.completion > now)
                .count() as u64;
            // Chunked prefill interleaves one decode iteration for the co-running
            // batch after each prefill chunk (Sarathi-style stall-free batching):
            // the new request's prefill pass stretches by the batchmates' decode
            // steps it hosts.  Zero whenever no decode batch is running, which
            // keeps prefill-only replays byte-identical to the pre-decode engine.
            let mut interleave = SimDuration::ZERO;
            if batchmates > 0 {
                if let executor::PrefillStrategy::Chunked { chunk_tokens } =
                    self.executor.config().strategy
                {
                    let chunks = prefill_new.div_ceil(chunk_tokens.max(1));
                    let per_iteration: SimDuration = self
                        .running
                        .values()
                        .filter(|r| {
                            r.request.decode_tokens > 0 && !r.emit_handoff && r.completion > now
                        })
                        .map(|r| {
                            self.executor
                                .decode_step_time(r.request.prompt_tokens(), batchmates)
                        })
                        .sum();
                    interleave = per_iteration * chunks;
                }
            }

            // Walk the request through the pipeline stages, respecting both the
            // request's own data dependency and each stage's availability.
            let mut previous_end = now;
            for (stage, stage_time) in breakdown.stage_times.iter().enumerate() {
                let work = if stage == 0 {
                    *stage_time + reload_transfer + interleave
                } else {
                    *stage_time
                };
                let start = previous_end.max(self.stage_free_at[stage]);
                let end = start + work;
                self.stage_free_at[stage] = end;
                self.stats.busy += work;
                previous_end = end;
            }
            let first_token = previous_end;

            // Iterative decode: one forward pass per reply token, batched with the
            // co-running decoders (weight streaming amortises over the batch).  The
            // decode schedule is priced at admission — replay-safe because the
            // per-instance event sequence is identical across replay modes, so the
            // batch observed here is too.  Decode iterations share the GPU with
            // subsequent prefills via chunked interleaving rather than occupying
            // `stage_free_at` (the batched-iteration simplification: decode never
            // blocks admission, it stretches co-running work instead).
            let mut decode_time = SimDuration::ZERO;
            if !emit_handoff {
                let batch = 1 + batchmates;
                for step in 0..request.decode_tokens {
                    decode_time += self.executor.decode_step_time(prompt_tokens + step, batch);
                }
                self.stats.busy += decode_time;
            }
            let completion = first_token + decode_time;

            let request_id = request.id;
            self.running.insert(
                request_id,
                RunningRequest {
                    request,
                    kv: kv_alloc,
                    started: now,
                    first_token,
                    completion,
                    emit_handoff,
                    carried: None,
                },
            );
            return Some(StartedRequest {
                request_id,
                completion,
            });
        }
    }

    /// Finishes a running request: commits its KV blocks to the prefix cache and
    /// produces the request record.
    ///
    /// Returns `None` on the prefill side of a disaggregated request: instead of a
    /// record, the whole reserved chain is pushed into the handoff outbox
    /// ([`Self::take_handoffs`]) for a decode slot to finish — the record appears
    /// there, once the decode schedule completes.
    ///
    /// # Panics
    ///
    /// Panics if `request_id` is not currently running.
    pub fn complete(&mut self, request_id: u64, now: SimTime) -> Option<RequestRecord> {
        let running = self
            .running
            .remove(&request_id)
            .expect("completing a request that is not running");
        debug_assert!(now >= running.completion);
        let cached = running.kv.cached_tokens();
        let reloaded = running.kv.reloaded_tokens();
        let net_reloaded = running.kv.net_reloaded_tokens();
        let net_propagated = running.kv.net_propagated_tokens();
        self.kv.commit(running.kv, now);
        if running.emit_handoff {
            // The prompt chain stays committed here (later turns re-hit this slot's
            // prefix cache); the whole reserved chain ships over the fabric.
            let request = running.request;
            let growth = SequenceGrowth::new(
                request.prompt_tokens(),
                request.decode_tokens,
                self.kv.block_size(),
            );
            let blocks = growth.total_blocks().max(1);
            let bytes = blocks * self.block_bytes;
            let ready_at = running.first_token + self.net_link.transfer_time(bytes);
            self.outbox.push(KvHandoff {
                request,
                prefill_slot: self.id,
                started: running.started,
                first_token: running.first_token,
                blocks,
                bytes,
                ready_at,
                cached_tokens: cached,
                reloaded_tokens: reloaded,
                net_reloaded_tokens: net_reloaded,
                net_propagated_tokens: net_propagated,
            });
            return None;
        }
        self.stats.completed += 1;
        let mut record = RequestRecord {
            request_id,
            user_id: running.request.user_id,
            instance: self.id,
            decode_instance: None,
            routing: running.request.routing,
            arrival: running.request.arrival,
            started: running.started,
            first_token: running.first_token,
            completed: running.completion,
            total_tokens: running.request.num_tokens(),
            decode_tokens: running.request.decode_tokens,
            cached_tokens: cached,
            reloaded_tokens: reloaded,
            net_reloaded_tokens: net_reloaded,
            net_propagated_tokens: net_propagated,
            handoff_bytes: 0,
        };
        if let Some(carry) = running.carried {
            // A handed-off chain: attribute the prefill work to the prefill slot and
            // report the residency its prefill pass actually saw (the decode-side
            // allocation was fed by the fabric transfer, not the cache tiers).
            record.instance = carry.prefill_slot;
            record.decode_instance = Some(self.id);
            record.handoff_bytes = carry.bytes;
            record.cached_tokens = carry.cached_tokens;
            record.reloaded_tokens = carry.reloaded_tokens;
            record.net_reloaded_tokens = carry.net_reloaded_tokens;
            record.net_propagated_tokens = carry.net_propagated_tokens;
        }
        Some(record)
    }

    /// Offers a handed-off chain to this (decode-capable) instance at an epoch
    /// boundary: reserves the whole chain via the [`SequenceGrowth`]-sized hash
    /// walk and prices the decode schedule against the co-running batch, exactly
    /// as a colocated admission would after its first token.
    ///
    /// Tier reloads are declined outright — the chain's KV arrived over the fabric
    /// with the handoff; re-fetching tier copies on top would double-charge.
    pub fn admit_handoff(&mut self, handoff: KvHandoff, now: SimTime) -> HandoffAdmission {
        debug_assert!(
            self.role.can_decode(),
            "handoffs may only target decode-capable slots"
        );
        let hashes = hash_token_blocks(&handoff.request.tokens, self.kv.block_size());
        let mut decline = |_: &ReloadQuote| false;
        let kv_alloc = match self.kv.allocate_from_hashes_with_policy(
            &hashes,
            handoff.request.num_tokens(),
            now,
            self.retention,
            &mut decline,
        ) {
            Ok(alloc) => alloc,
            Err(err) => {
                if err.needed_blocks > self.kv.capacity_blocks() {
                    // Even an empty pool could not hold the reserved chain.
                    self.stats.rejected += 1;
                    return HandoffAdmission::Rejected;
                }
                return HandoffAdmission::Retry(handoff);
            }
        };
        let batchmates: u64 = self
            .running
            .values()
            .filter(|r| r.request.decode_tokens > 0 && !r.emit_handoff && r.completion > now)
            .count() as u64;
        let batch = 1 + batchmates;
        let prompt_tokens = handoff.request.prompt_tokens();
        let mut decode_time = SimDuration::ZERO;
        for step in 0..handoff.request.decode_tokens {
            decode_time += self.executor.decode_step_time(prompt_tokens + step, batch);
        }
        self.stats.busy += decode_time;
        let completion = now + decode_time;
        let request_id = handoff.request.id;
        self.running.insert(
            request_id,
            RunningRequest {
                request: handoff.request,
                kv: kv_alloc,
                started: handoff.started,
                first_token: handoff.first_token,
                completion,
                emit_handoff: false,
                carried: Some(HandoffCarry {
                    prefill_slot: handoff.prefill_slot,
                    bytes: handoff.bytes,
                    cached_tokens: handoff.cached_tokens,
                    reloaded_tokens: handoff.reloaded_tokens,
                    net_reloaded_tokens: handoff.net_reloaded_tokens,
                    net_propagated_tokens: handoff.net_propagated_tokens,
                }),
            },
        );
        HandoffAdmission::Admitted(StartedRequest {
            request_id,
            completion,
        })
    }
}

impl std::fmt::Debug for EngineInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineInstance")
            .field("id", &self.id)
            .field("max_input_length", &self.max_input_length)
            .field("queue_len", &self.queue.len())
            .field("running", &self.running.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineConfig, EngineKind};
    use crate::routing::RoutingReason;
    use gpu::HardwareSetup;
    use model::ModelPreset;

    fn config(kind: EngineKind) -> EngineConfig {
        EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            kind,
            20_000,
        )
    }

    fn request(id: u64, user: u64, tokens: u64, arrival: SimTime) -> PrefillRequest {
        PrefillRequest {
            id,
            user_id: user,
            tokens: Arc::new((0..tokens as u32).collect()),
            decode_tokens: 0,
            allowed_outputs: vec!["Yes".into(), "No".into()],
            arrival,
            routing: RoutingReason::Direct,
        }
    }

    #[test]
    fn profile_run_sizes_the_pool_and_mil() {
        let instance = EngineInstance::new(&config(EngineKind::prefillonly_default()), 0);
        assert!(instance.max_input_length() >= 20_000);
        assert!(instance.kv_pool_tokens() > 0);
        assert_eq!(instance.queue_len(), 0);
        assert_eq!(instance.running_len(), 0);
    }

    #[test]
    fn request_lifecycle_produces_a_record() {
        let mut instance = EngineInstance::new(&config(EngineKind::prefillonly_default()), 0);
        let now = SimTime::ZERO;
        instance.enqueue(request(1, 7, 4_000, now), now);
        assert_eq!(instance.queue_len(), 1);
        let started = instance.try_start(now).expect("idle instance must start");
        assert_eq!(started.request_id, 1);
        assert!(started.completion > now);
        assert_eq!(instance.running_len(), 1);
        let record = instance
            .complete(1, started.completion)
            .expect("colocated completion must yield a record");
        assert_eq!(record.user_id, 7);
        assert_eq!(record.total_tokens, 4_000);
        assert_eq!(record.cached_tokens, 0);
        assert!(record.latency() > SimDuration::ZERO);
        assert_eq!(instance.stats().completed, 1);
    }

    #[test]
    fn busy_instance_does_not_admit() {
        let mut instance = EngineInstance::new(&config(EngineKind::PagedAttention), 0);
        let now = SimTime::ZERO;
        instance.enqueue(request(1, 1, 4_000, now), now);
        instance.enqueue(request(2, 2, 4_000, now), now);
        let first = instance.try_start(now).unwrap();
        assert!(instance.try_start(now).is_none(), "single stage is busy");
        // After the first completes, the second can start.
        let later = first.completion;
        instance.complete(first.request_id, later);
        assert!(instance.try_start(later).is_some());
    }

    #[test]
    fn second_request_of_same_user_hits_the_cache() {
        let mut instance = EngineInstance::new(&config(EngineKind::prefillonly_default()), 0);
        let shared: Vec<u32> = (0..8_000).collect();
        let mut req_a = shared.clone();
        req_a.extend(100_000..100_150u32);
        let mut req_b = shared.clone();
        req_b.extend(200_000..200_150u32);

        let now = SimTime::ZERO;
        let a = PrefillRequest {
            id: 1,
            user_id: 1,
            tokens: Arc::new(req_a),
            decode_tokens: 0,
            allowed_outputs: vec![],
            arrival: now,
            routing: RoutingReason::Direct,
        };
        instance.enqueue(a, now);
        let started_a = instance.try_start(now).unwrap();
        let record_a = instance.complete(1, started_a.completion).unwrap();
        assert_eq!(record_a.cached_tokens, 0);

        let later = started_a.completion;
        let b = PrefillRequest {
            id: 2,
            user_id: 1,
            tokens: Arc::new(req_b),
            decode_tokens: 0,
            allowed_outputs: vec![],
            arrival: later,
            routing: RoutingReason::Direct,
        };
        instance.enqueue(b, later);
        let started_b = instance.try_start(later).unwrap();
        let record_b = instance.complete(2, started_b.completion).unwrap();
        assert!(
            record_b.cached_tokens >= 7_000,
            "expected a large prefix hit, got {}",
            record_b.cached_tokens
        );
        // The cache hit must also make the second request faster.
        assert!(record_b.execution() < record_a.execution());
    }

    #[test]
    fn evicted_profile_reloads_from_cpu_instead_of_recomputing() {
        // A small pool (squeezed via memory utilization) with a CPU tier behind it:
        // when another user's traffic evicts a profile, the profile's next request
        // rehydrates over the host link — faster than recomputing, slower than a
        // GPU-resident hit.
        let mut config = config(EngineKind::prefillonly_default());
        config.memory_utilization = 0.70;
        let config = config.with_cpu_offload(64 << 30);
        let mut instance = EngineInstance::new(&config, 0);
        let pool_tokens = instance.kv_pool_tokens();
        assert!(
            pool_tokens < 16_000,
            "test premise: pool ({pool_tokens} tokens) below the two-user working set"
        );
        assert!(instance.cpu_hit_discount() > 0.5, "PCIe reload ≫ recompute");

        let profile_a: Vec<u32> = (0..8_000).collect();
        let profile_b: Vec<u32> = (1_000_000..1_008_000).collect();
        let mut now = SimTime::ZERO;
        let mut run = |instance: &mut EngineInstance, id: u64, user: u64, tokens: &[u32]| {
            let request = PrefillRequest {
                id,
                user_id: user,
                tokens: Arc::new(tokens.to_vec()),
                decode_tokens: 0,
                allowed_outputs: vec![],
                arrival: now,
                routing: RoutingReason::Direct,
            };
            instance.enqueue(request, now);
            let started = instance.try_start(now).expect("idle instance admits");
            let record = instance.complete(id, started.completion).unwrap();
            now = started.completion;
            record
        };

        let cold = run(&mut instance, 1, 1, &profile_a);
        assert_eq!(cold.reloaded_tokens, 0);
        // B's profile evicts A's from the squeezed pool, spilling it to CPU.
        run(&mut instance, 2, 2, &profile_b);
        assert!(instance.offload_stats().offloaded_blocks > 0, "A spilled");

        let reloaded = run(&mut instance, 3, 1, &profile_a);
        assert!(
            reloaded.reloaded_tokens >= pool_tokens,
            "A's profile must come back from the CPU tier up to the pool's capacity, \
             got {} of {pool_tokens} tokens",
            reloaded.reloaded_tokens
        );
        assert_eq!(reloaded.cached_tokens, 0, "the GPU copy was evicted");
        assert!(
            reloaded.execution() < cold.execution(),
            "reloading must beat recomputing ({} vs {})",
            reloaded.execution(),
            cold.execution()
        );

        // A GPU-warm repeat (nothing evicted in between) is faster still.
        let warm = run(&mut instance, 4, 1, &profile_a);
        assert!(warm.cached_tokens >= pool_tokens);
        assert!(warm.execution() < reloaded.execution());
    }

    #[test]
    fn oversized_requests_are_rejected_not_executed() {
        let mut instance = EngineInstance::new(&config(EngineKind::PagedAttention), 0);
        let mil = instance.max_input_length();
        let now = SimTime::ZERO;
        instance.enqueue(request(1, 1, mil + 5_000, now), now);
        assert!(instance.try_start(now).is_none());
        assert_eq!(instance.stats().rejected, 1);
        assert_eq!(instance.running_len(), 0);
    }

    #[test]
    fn pipeline_parallel_instance_overlaps_requests() {
        let mut instance = EngineInstance::new(&config(EngineKind::PipelineParallel), 0);
        let now = SimTime::ZERO;
        instance.enqueue(request(1, 1, 8_000, now), now);
        instance.enqueue(request(2, 2, 8_000, now), now);
        let first = instance.try_start(now).unwrap();
        // The second request can be admitted as soon as stage 0 frees up, which is
        // before the first request fully completes.
        let admit_at = instance.next_admission_time();
        assert!(admit_at < first.completion);
        let second = instance.try_start(admit_at).unwrap();
        assert!(second.completion > first.completion);
        instance.complete(first.request_id, first.completion);
        instance.complete(second.request_id, second.completion);
        assert_eq!(instance.stats().completed, 2);
    }

    #[test]
    fn prefill_role_emits_handoff_and_decode_role_admits_it() {
        let cfg = config(EngineKind::prefillonly_default())
            .with_roles(vec![InstanceRole::Prefill, InstanceRole::Decode]);
        let mut prefill = EngineInstance::new(&cfg, 0);
        let mut decode = EngineInstance::new(&cfg, 1);
        assert_eq!(prefill.role(), InstanceRole::Prefill);
        assert_eq!(decode.role(), InstanceRole::Decode);

        let now = SimTime::ZERO;
        let mut req = request(1, 7, 4_000, now);
        req.decode_tokens = 64;
        prefill.enqueue(req, now);
        let started = prefill.try_start(now).expect("idle prefill slot admits");
        // The prefill side stops at first token: no decode time is charged there.
        assert_eq!(prefill.running_len(), 1);
        assert!(
            prefill.complete(1, started.completion).is_none(),
            "prefill side emits a handoff, not a record"
        );
        assert_eq!(prefill.stats().completed, 0);

        let mut handoffs = prefill.take_handoffs();
        assert_eq!(handoffs.len(), 1);
        assert!(prefill.take_handoffs().is_empty(), "outbox drains once");
        let handoff = handoffs.pop().unwrap();
        assert_eq!(handoff.prefill_slot, 0);
        assert_eq!(handoff.first_token, started.completion);
        assert_eq!(handoff.bytes, handoff.blocks * prefill.kv_block_bytes());
        assert!(
            handoff.ready_at > handoff.first_token,
            "the fabric transfer must take time"
        );

        let boundary = handoff.ready_at;
        match decode.admit_handoff(handoff, boundary) {
            HandoffAdmission::Admitted(admitted) => {
                assert_eq!(admitted.request_id, 1);
                assert!(admitted.completion > boundary, "decode steps take time");
                let record = decode
                    .complete(admitted.request_id, admitted.completion)
                    .expect("decode side produces the record");
                assert_eq!(record.instance, 0, "prefill slot owns the prefill pass");
                assert_eq!(record.decode_instance, Some(1));
                assert!(record.handoff_bytes > 0);
                assert_eq!(record.decode_tokens, 64);
                assert_eq!(record.first_token, started.completion);
                assert!(record.completed > record.first_token);
            }
            other => panic!("expected admission, got {other:?}"),
        }
        assert_eq!(decode.stats().completed, 1);
    }

    #[test]
    fn prefillonly_schedules_cache_friendly_request_first() {
        // Two requests wait: a long one whose prefix is already cached and a short cold
        // one.  PrefillOnly (SRJF + calibration) must pick the cached one; the
        // PagedAttention baseline (FCFS) picks the one that arrived first.
        let shared: Vec<u32> = (0..12_000).collect();
        let build = |kind: EngineKind| -> (EngineInstance, SimTime) {
            let mut instance = EngineInstance::new(&config(kind), 0);
            let now = SimTime::ZERO;
            // Warm the cache with the shared prefix.
            let warm = PrefillRequest {
                id: 100,
                user_id: 1,
                tokens: Arc::new(shared.clone()),
                decode_tokens: 0,
                allowed_outputs: vec![],
                arrival: now,
                routing: RoutingReason::Direct,
            };
            instance.enqueue(warm, now);
            let s = instance.try_start(now).unwrap();
            instance.complete(100, s.completion);
            (instance, s.completion)
        };

        let cold_tokens: Arc<Vec<u32>> = Arc::new((700_000..706_000u32).collect());
        let (mut po, t0) = build(EngineKind::prefillonly_default());
        // Cold short request arrives first, warm long request second.
        let cold = PrefillRequest {
            id: 1,
            user_id: 2,
            tokens: Arc::clone(&cold_tokens),
            decode_tokens: 0,
            allowed_outputs: vec![],
            arrival: t0,
            routing: RoutingReason::Direct,
        };
        let mut warm_tokens = shared.clone();
        warm_tokens.extend(500_000..500_150u32);
        let warm = PrefillRequest {
            id: 2,
            user_id: 1,
            tokens: Arc::new(warm_tokens.clone()),
            decode_tokens: 0,
            allowed_outputs: vec![],
            arrival: t0,
            routing: RoutingReason::Direct,
        };
        po.enqueue(cold.clone(), t0);
        po.enqueue(warm.clone(), t0);
        let first = po.try_start(t0).unwrap();
        assert_eq!(first.request_id, 2, "calibrated SRJF prefers the cache hit");

        let (mut paged, t1) = build(EngineKind::PagedAttention);
        let cold = PrefillRequest {
            id: 1,
            user_id: 2,
            tokens: Arc::clone(&cold_tokens),
            decode_tokens: 0,
            allowed_outputs: vec![],
            arrival: t1,
            routing: RoutingReason::Direct,
        };
        let warm = PrefillRequest {
            id: 2,
            user_id: 1,
            tokens: Arc::new(warm_tokens),
            decode_tokens: 0,
            allowed_outputs: vec![],
            arrival: t1,
            routing: RoutingReason::Direct,
        };
        paged.enqueue(cold, t1);
        paged.enqueue(warm, t1);
        let first = paged.try_start(t1).unwrap();
        assert_eq!(first.request_id, 1, "FCFS runs the earlier-arrived request");
    }
}

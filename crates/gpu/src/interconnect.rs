//! Inter-GPU link and collective cost model.
//!
//! Tensor parallelism pays two all-reduces per transformer block (§2.5); pipeline
//! parallelism ships the residual stream across the stage boundary once per request.
//! These costs — and how dramatically NVLink changes them (Fig. 8) — are modelled here
//! from link bandwidth plus a per-operation launch latency.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// The physical link connecting two GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// PCIe 4.0 x16 (L4, A100 PCIe setups).
    PcieGen4,
    /// PCIe 5.0 x16 (H100 PCIe setup).
    PcieGen5,
    /// NVLink 4 (H100 NVLink setup).
    NvLink4,
}

impl LinkKind {
    /// Effective unidirectional bandwidth in bytes/second.
    pub fn bandwidth_bytes_per_sec(self) -> f64 {
        match self {
            // Achievable device-to-device throughput, not the theoretical bus peak.
            LinkKind::PcieGen4 => 24.0e9,
            LinkKind::PcieGen5 => 48.0e9,
            LinkKind::NvLink4 => 450.0e9,
        }
    }

    /// Per-collective launch latency.
    pub fn launch_latency(self) -> SimDuration {
        match self {
            LinkKind::PcieGen4 | LinkKind::PcieGen5 => SimDuration::from_micros(20),
            LinkKind::NvLink4 => SimDuration::from_micros(8),
        }
    }

    /// Whether this link is NVLink-class.
    pub fn is_nvlink(self) -> bool {
        matches!(self, LinkKind::NvLink4)
    }
}

/// Cost model of the host↔device link used to spill and rehydrate KV blocks
/// between GPU and CPU memory (the §9 hierarchical-cache extension).
///
/// The CPU tier sits behind the same physical links as peer GPUs — PCIe for the
/// evaluated setups, NVLink-C2C on Grace-Hopper-class machines — so the model reuses
/// [`LinkKind`]'s achievable bandwidth and per-operation launch latency.  Offload
/// writes are assumed to overlap with compute (they are asynchronous DMA off the
/// critical path); only *reloads* stall the GPU, so only [`HostLink::transfer_time`]
/// is ever charged to a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostLink {
    link: LinkKind,
}

impl HostLink {
    /// Creates a host-link model over the given physical link.
    pub fn new(link: LinkKind) -> HostLink {
        HostLink { link }
    }

    /// The underlying link.
    pub fn link(&self) -> LinkKind {
        self.link
    }

    /// Marginal seconds per byte of a large transfer (the launch latency excluded).
    pub fn secs_per_byte(&self) -> f64 {
        1.0 / self.link.bandwidth_bytes_per_sec()
    }

    /// Time for one synchronous host→device (or device→host) copy of `bytes` bytes:
    /// the launch latency plus the bandwidth-bound transfer.  Zero bytes cost nothing.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let transfer = bytes as f64 / self.link.bandwidth_bytes_per_sec();
        self.link.launch_latency() + SimDuration::from_secs_f64(transfer)
    }
}

/// The network fabric connecting the instances of one deployment (the cluster-shared
/// KV tier of the §9 extension, one level below the CPU tier).
///
/// Unlike [`LinkKind`], which models intra-node GPU↔GPU/host links, these are
/// node-to-node fabrics: an order of magnitude less bandwidth and noticeably higher
/// per-transfer setup latency, which is why reloading a prefix over the network is a
/// *per-request* decision rather than an always-on default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetLinkKind {
    /// 25 GbE TCP (commodity cloud networking).
    Tcp25G,
    /// 100 Gb/s RDMA (RoCE / InfiniBand EDR class).
    Rdma100G,
    /// 400 Gb/s RDMA (InfiniBand NDR class).
    Rdma400G,
    /// No inter-node fabric at all: hosts cannot move KV between each other.
    /// Deployments that *require* cross-instance KV movement (disaggregated
    /// prefill/decode fleets) must reject this at validation time; cost-model
    /// consumers see zero bandwidth and an unreachable-tier transfer time.
    Disabled,
}

impl NetLinkKind {
    /// Effective unidirectional bandwidth in bytes/second (achievable goodput, not
    /// the marketing line rate).  Zero for [`NetLinkKind::Disabled`].
    pub fn bandwidth_bytes_per_sec(self) -> f64 {
        match self {
            NetLinkKind::Tcp25G => 2.5e9,
            NetLinkKind::Rdma100G => 11.0e9,
            NetLinkKind::Rdma400G => 45.0e9,
            NetLinkKind::Disabled => 0.0,
        }
    }

    /// Per-transfer setup latency (connection reuse assumed; this is the request /
    /// first-byte latency, not a handshake).
    pub fn launch_latency(self) -> SimDuration {
        match self {
            NetLinkKind::Tcp25G => SimDuration::from_micros(60),
            NetLinkKind::Rdma100G => SimDuration::from_micros(15),
            NetLinkKind::Rdma400G => SimDuration::from_micros(10),
            NetLinkKind::Disabled => SimDuration::ZERO,
        }
    }

    /// Whether the fabric can move bytes at all.
    pub fn is_enabled(self) -> bool {
        !matches!(self, NetLinkKind::Disabled)
    }
}

/// Cost model of the network link KV blocks cross when reloaded from the
/// cluster-shared tier (the third tier of the hierarchical KV cache).
///
/// Mirrors [`HostLink`]: spills into the network tier are asynchronous and overlap
/// with compute, so only *reloads* are ever charged to a request — serialised before
/// stage-0 compute, exactly like host-link reloads.  The per-request
/// reload-vs-recompute decision compares [`NetLink::transfer_time`] at the observed
/// hit depth against the modelled recompute saving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetLink {
    link: NetLinkKind,
}

impl NetLink {
    /// Creates a network-link model over the given fabric.
    pub fn new(link: NetLinkKind) -> NetLink {
        NetLink { link }
    }

    /// The underlying fabric.
    pub fn link(&self) -> NetLinkKind {
        self.link
    }

    /// Marginal seconds per byte of a large transfer (the setup latency excluded).
    pub fn secs_per_byte(&self) -> f64 {
        1.0 / self.link.bandwidth_bytes_per_sec()
    }

    /// Time for one synchronous remote→local copy of `bytes` bytes: the setup
    /// latency plus the bandwidth-bound transfer.  Zero bytes cost nothing.  On a
    /// [`NetLinkKind::Disabled`] fabric any non-zero transfer is unserviceable and
    /// priced as a huge finite duration — validation rejects configurations that
    /// could ever charge it, this arm only keeps the cost model total.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let bandwidth = self.link.bandwidth_bytes_per_sec();
        if bandwidth <= 0.0 {
            return SimDuration::from_secs(u32::MAX as u64);
        }
        let transfer = bytes as f64 / bandwidth;
        self.link.launch_latency() + SimDuration::from_secs_f64(transfer)
    }
}

/// Collective / point-to-point communication cost model over a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    link: LinkKind,
    /// Number of GPUs participating in collectives.
    world_size: u32,
}

impl Interconnect {
    /// Creates a cost model for `world_size` GPUs joined by `link`.
    ///
    /// # Panics
    ///
    /// Panics if `world_size` is zero.
    pub fn new(link: LinkKind, world_size: u32) -> Interconnect {
        assert!(world_size > 0, "world size must be at least 1");
        Interconnect { link, world_size }
    }

    /// The underlying link.
    pub fn link(&self) -> LinkKind {
        self.link
    }

    /// Number of participating GPUs.
    pub fn world_size(&self) -> u32 {
        self.world_size
    }

    /// Time for one ring all-reduce of `bytes` bytes across the world.
    ///
    /// Ring all-reduce moves `2 (n-1)/n * bytes` per GPU over the link.
    pub fn all_reduce(&self, bytes: u64) -> SimDuration {
        if self.world_size == 1 || bytes == 0 {
            return SimDuration::ZERO;
        }
        let n = f64::from(self.world_size);
        let transferred = 2.0 * (n - 1.0) / n * bytes as f64;
        let transfer = transferred / self.link.bandwidth_bytes_per_sec();
        self.link.launch_latency() + SimDuration::from_secs_f64(transfer)
    }

    /// Time to copy `bytes` bytes point-to-point between two GPUs (pipeline-parallel
    /// activation handoff, KV-cache offload, ...).
    pub fn point_to_point(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let transfer = bytes as f64 / self.link.bandwidth_bytes_per_sec();
        self.link.launch_latency() + SimDuration::from_secs_f64(transfer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvlink_is_much_faster_than_pcie() {
        let bytes = 256 * 1024 * 1024;
        let pcie = Interconnect::new(LinkKind::PcieGen4, 2).all_reduce(bytes);
        let nvlink = Interconnect::new(LinkKind::NvLink4, 2).all_reduce(bytes);
        assert!(
            pcie.as_secs_f64() > 10.0 * nvlink.as_secs_f64(),
            "pcie {pcie} vs nvlink {nvlink}"
        );
    }

    #[test]
    fn all_reduce_zero_cases() {
        let single = Interconnect::new(LinkKind::PcieGen4, 1);
        assert_eq!(single.all_reduce(1 << 20), SimDuration::ZERO);
        let pair = Interconnect::new(LinkKind::PcieGen4, 2);
        assert_eq!(pair.all_reduce(0), SimDuration::ZERO);
        assert_eq!(pair.point_to_point(0), SimDuration::ZERO);
    }

    #[test]
    fn all_reduce_includes_latency_floor() {
        let pair = Interconnect::new(LinkKind::NvLink4, 2);
        let tiny = pair.all_reduce(16);
        assert!(tiny >= LinkKind::NvLink4.launch_latency());
    }

    #[test]
    fn ring_factor_applied() {
        // With world=2 the ring factor is 2*(2-1)/2 = 1.0, so an all-reduce of B bytes
        // costs about the same as a point-to-point copy of B bytes plus latency delta.
        let pair = Interconnect::new(LinkKind::PcieGen4, 2);
        let ar = pair.all_reduce(1 << 30).as_secs_f64();
        let p2p = pair.point_to_point(1 << 30).as_secs_f64();
        assert!((ar - p2p).abs() / p2p < 0.01);
    }

    #[test]
    #[should_panic(expected = "world size")]
    fn zero_world_size_panics() {
        Interconnect::new(LinkKind::PcieGen4, 0);
    }

    #[test]
    fn host_link_transfer_matches_point_to_point() {
        // A host reload crosses the same physical link as a GPU↔GPU copy.
        let host = HostLink::new(LinkKind::PcieGen4);
        let p2p = Interconnect::new(LinkKind::PcieGen4, 2);
        let bytes = 256 * 1024 * 1024;
        assert_eq!(host.transfer_time(bytes), p2p.point_to_point(bytes));
        assert_eq!(host.transfer_time(0), SimDuration::ZERO);
        assert!(host.transfer_time(1) >= LinkKind::PcieGen4.launch_latency());
        assert_eq!(host.link(), LinkKind::PcieGen4);
    }

    #[test]
    fn host_link_secs_per_byte_is_the_bandwidth_reciprocal() {
        let host = HostLink::new(LinkKind::PcieGen5);
        let secs = host.secs_per_byte() * 48.0e9;
        assert!((secs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn net_fabrics_are_ordered_and_tcp_trails_pcie() {
        // Fabric presets order by bandwidth, and commodity TCP networking is clearly
        // behind even the slowest host link — the configuration where the
        // per-request reload-vs-recompute decision earns its keep.
        let bytes = 256 * 1024 * 1024;
        let tcp = NetLink::new(NetLinkKind::Tcp25G).transfer_time(bytes);
        let rdma100 = NetLink::new(NetLinkKind::Rdma100G).transfer_time(bytes);
        let rdma400 = NetLink::new(NetLinkKind::Rdma400G).transfer_time(bytes);
        assert!(tcp > rdma100 && rdma100 > rdma400);
        let slowest_host = HostLink::new(LinkKind::PcieGen4).transfer_time(bytes);
        assert!(
            tcp.as_secs_f64() > 5.0 * slowest_host.as_secs_f64(),
            "tcp {tcp} vs host {slowest_host}"
        );
    }

    #[test]
    fn disabled_fabric_moves_nothing() {
        assert!(!NetLinkKind::Disabled.is_enabled());
        assert!(NetLinkKind::Tcp25G.is_enabled());
        assert_eq!(NetLinkKind::Disabled.bandwidth_bytes_per_sec(), 0.0);
        let link = NetLink::new(NetLinkKind::Disabled);
        assert_eq!(link.transfer_time(0), SimDuration::ZERO);
        // A non-zero transfer over a disabled fabric is unserviceable: the cost
        // model stays total (finite) but nothing sane can ever afford it.
        let forever = link.transfer_time(1);
        assert!(forever >= SimDuration::from_secs(u32::MAX as u64));
    }

    #[test]
    fn net_link_transfer_includes_latency_floor_and_zero_case() {
        for kind in [
            NetLinkKind::Tcp25G,
            NetLinkKind::Rdma100G,
            NetLinkKind::Rdma400G,
        ] {
            let link = NetLink::new(kind);
            assert_eq!(link.transfer_time(0), SimDuration::ZERO);
            assert!(link.transfer_time(1) >= kind.launch_latency());
            let secs = link.secs_per_byte() * kind.bandwidth_bytes_per_sec();
            assert!((secs - 1.0).abs() < 1e-12);
            assert_eq!(link.link(), kind);
        }
    }
}

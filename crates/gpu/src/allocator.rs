//! A caching-allocator-style GPU memory accountant.
//!
//! §4.1 of the paper analyses the *GPU memory trace of the PyTorch allocator* while
//! prefilling 32,768 tokens (Fig. 3): the KV cache grows steadily while the MLP
//! intermediate tensors create periodic spikes that dominate the peak.  The executor
//! reproduces those traces by replaying its allocation pattern against this accountant,
//! which tracks live bytes, reserved bytes (the high-watermark a caching allocator
//! never returns to the driver) and the overall peak.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// Error returned when an allocation does not fit in device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocError {
    /// Bytes that were requested.
    pub requested: u64,
    /// Bytes that were still available.
    pub available: u64,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of GPU memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for AllocError {}

/// Handle to a live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AllocHandle(u64);

/// One sample of the memory trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Virtual time of the sample.
    pub at: SimTime,
    /// Bytes currently allocated to live tensors.
    pub live_bytes: u64,
    /// Bytes reserved from the device (monotone high-watermark).
    pub reserved_bytes: u64,
}

/// A time-ordered memory usage trace, as plotted in Fig. 3.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryTrace {
    points: Vec<TracePoint>,
}

impl MemoryTrace {
    /// The recorded samples in chronological order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Peak live bytes over the trace.
    pub fn peak_live_bytes(&self) -> u64 {
        self.points.iter().map(|p| p.live_bytes).max().unwrap_or(0)
    }

    /// Final reserved bytes (the caching allocator's footprint).
    pub fn final_reserved_bytes(&self) -> u64 {
        self.points.last().map(|p| p.reserved_bytes).unwrap_or(0)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Tracks GPU memory usage the way the PyTorch caching allocator does.
#[derive(Debug, Clone)]
pub struct CachingAllocator {
    capacity_bytes: u64,
    live_bytes: u64,
    reserved_bytes: u64,
    peak_live_bytes: u64,
    next_handle: u64,
    allocations: HashMap<AllocHandle, (u64, &'static str)>,
    trace: MemoryTrace,
    record_trace: bool,
}

impl CachingAllocator {
    /// Creates an allocator over `capacity_bytes` of device memory.
    pub fn new(capacity_bytes: u64) -> CachingAllocator {
        CachingAllocator {
            capacity_bytes,
            live_bytes: 0,
            reserved_bytes: 0,
            peak_live_bytes: 0,
            next_handle: 0,
            allocations: HashMap::new(),
            trace: MemoryTrace::default(),
            record_trace: false,
        }
    }

    /// Enables trace recording (disabled by default to keep long simulations cheap).
    pub fn with_trace(mut self) -> CachingAllocator {
        self.record_trace = true;
        self
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently allocated to live tensors.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Bytes reserved from the device so far (never shrinks).
    pub fn reserved_bytes(&self) -> u64 {
        self.reserved_bytes
    }

    /// Highest live-byte count observed so far.
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live_bytes
    }

    /// Bytes still available before hitting capacity.
    pub fn available_bytes(&self) -> u64 {
        self.capacity_bytes - self.live_bytes
    }

    /// Allocates `bytes` bytes tagged with a static label (for trace readability).
    ///
    /// Fails if the allocation would exceed device capacity.
    pub fn allocate(
        &mut self,
        at: SimTime,
        bytes: u64,
        tag: &'static str,
    ) -> Result<AllocHandle, AllocError> {
        if bytes > self.available_bytes() {
            return Err(AllocError {
                requested: bytes,
                available: self.available_bytes(),
            });
        }
        self.live_bytes += bytes;
        self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
        self.reserved_bytes = self.reserved_bytes.max(self.live_bytes);
        let handle = AllocHandle(self.next_handle);
        self.next_handle += 1;
        self.allocations.insert(handle, (bytes, tag));
        self.sample(at);
        Ok(handle)
    }

    /// Frees a previously allocated handle.
    ///
    /// # Panics
    ///
    /// Panics on double free / unknown handle, which would indicate an executor bug.
    pub fn free(&mut self, at: SimTime, handle: AllocHandle) {
        let (bytes, _) = self
            .allocations
            .remove(&handle)
            .expect("freeing an allocation that does not exist");
        self.live_bytes -= bytes;
        self.sample(at);
    }

    /// Convenience: allocate-then-free around a closure, used for transient kernels.
    pub fn with_transient<T>(
        &mut self,
        at: SimTime,
        bytes: u64,
        tag: &'static str,
        f: impl FnOnce(&mut Self) -> T,
    ) -> Result<T, AllocError> {
        let handle = self.allocate(at, bytes, tag)?;
        let out = f(self);
        self.free(at, handle);
        Ok(out)
    }

    /// Returns the recorded trace (empty unless [`Self::with_trace`] was used).
    pub fn trace(&self) -> &MemoryTrace {
        &self.trace
    }

    /// Resets live allocations and the peak, keeping the reserved high-watermark, as a
    /// caching allocator does between requests.
    pub fn reset_peak(&mut self) {
        self.peak_live_bytes = self.live_bytes;
    }

    fn sample(&mut self, at: SimTime) {
        if self.record_trace {
            self.trace.points.push(TracePoint {
                at,
                live_bytes: self.live_bytes,
                reserved_bytes: self.reserved_bytes,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1 << 20;

    #[test]
    fn alloc_free_cycle_tracks_peak() {
        let mut a = CachingAllocator::new(100 * MIB);
        let t = SimTime::ZERO;
        let h1 = a.allocate(t, 40 * MIB, "weights").unwrap();
        let h2 = a.allocate(t, 30 * MIB, "activations").unwrap();
        assert_eq!(a.live_bytes(), 70 * MIB);
        assert_eq!(a.peak_live_bytes(), 70 * MIB);
        a.free(t, h2);
        assert_eq!(a.live_bytes(), 40 * MIB);
        assert_eq!(a.peak_live_bytes(), 70 * MIB, "peak must not shrink");
        assert_eq!(a.reserved_bytes(), 70 * MIB, "reserved is a high-watermark");
        a.free(t, h1);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let mut a = CachingAllocator::new(10 * MIB);
        let err = a.allocate(SimTime::ZERO, 11 * MIB, "too big").unwrap_err();
        assert_eq!(err.requested, 11 * MIB);
        assert_eq!(err.available, 10 * MIB);
        assert!(err.to_string().contains("out of GPU memory"));
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn double_free_panics() {
        let mut a = CachingAllocator::new(10 * MIB);
        let h = a.allocate(SimTime::ZERO, MIB, "x").unwrap();
        a.free(SimTime::ZERO, h);
        a.free(SimTime::ZERO, h);
    }

    #[test]
    fn transient_allocations_restore_state() {
        let mut a = CachingAllocator::new(10 * MIB);
        let before = a.live_bytes();
        let result = a
            .with_transient(SimTime::ZERO, 5 * MIB, "spike", |inner| inner.live_bytes())
            .unwrap();
        assert_eq!(result, 5 * MIB);
        assert_eq!(a.live_bytes(), before);
        assert_eq!(a.peak_live_bytes(), 5 * MIB);
    }

    #[test]
    fn trace_records_every_transition() {
        let mut a = CachingAllocator::new(10 * MIB).with_trace();
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_millis(1);
        let h = a.allocate(t0, 2 * MIB, "kv").unwrap();
        a.free(t1, h);
        let trace = a.trace();
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        assert_eq!(trace.points()[0].live_bytes, 2 * MIB);
        assert_eq!(trace.points()[1].live_bytes, 0);
        assert_eq!(trace.peak_live_bytes(), 2 * MIB);
        assert_eq!(trace.final_reserved_bytes(), 2 * MIB);
    }

    #[test]
    fn reset_peak_keeps_reserved() {
        let mut a = CachingAllocator::new(100 * MIB);
        let t = SimTime::ZERO;
        let h = a.allocate(t, 60 * MIB, "spike").unwrap();
        a.free(t, h);
        a.reset_peak();
        assert_eq!(a.peak_live_bytes(), 0);
        assert_eq!(a.reserved_bytes(), 60 * MIB);
    }
}

//! GPU device catalogue.
//!
//! The four hardware setups of Table 3: 2× L4, 2× A100-40G PCIe, 2× H100 PCIe, and
//! 2× H100 with NVLink.  Specifications use publicly documented dense (non-sparse)
//! throughput numbers.

use serde::{Deserialize, Serialize};

use model::DType;

use crate::interconnect::LinkKind;

/// Identifier for a GPU model in the catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuKind {
    /// NVIDIA L4, 24 GB (the "low-end" setup).
    L4,
    /// NVIDIA A100 40 GB PCIe (the "middle-end" setup).
    A100_40G,
    /// NVIDIA H100 80 GB PCIe (the "high-end" setup).
    H100_80G,
}

impl GpuKind {
    /// Returns the full specification for this GPU.
    pub fn spec(self) -> GpuSpec {
        match self {
            GpuKind::L4 => GpuSpec {
                kind: self,
                name: "NVIDIA L4 24GB",
                memory_bytes: 24 * GIB,
                memory_bandwidth_bytes_per_sec: 300.0e9,
                bf16_tflops: 121.0,
                fp8_tflops: 242.0,
                fp32_tflops: 30.3,
            },
            GpuKind::A100_40G => GpuSpec {
                kind: self,
                name: "NVIDIA A100 40GB PCIe",
                memory_bytes: 40 * GIB,
                memory_bandwidth_bytes_per_sec: 1_555.0e9,
                bf16_tflops: 312.0,
                // A100 has no FP8 tensor cores; FP8-quantised checkpoints dequantise to
                // BF16/INT8 paths, so matmul throughput stays at the BF16 rate.
                fp8_tflops: 312.0,
                fp32_tflops: 19.5,
            },
            GpuKind::H100_80G => GpuSpec {
                kind: self,
                name: "NVIDIA H100 80GB",
                memory_bytes: 80 * GIB,
                memory_bandwidth_bytes_per_sec: 2_000.0e9,
                bf16_tflops: 756.0,
                fp8_tflops: 1_513.0,
                fp32_tflops: 51.0,
            },
        }
    }
}

const GIB: u64 = 1 << 30;

/// Static specification of one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Which catalogue entry this is.
    pub kind: GpuKind,
    /// Marketing name.
    pub name: &'static str,
    /// Total device memory in bytes.
    pub memory_bytes: u64,
    /// HBM bandwidth in bytes/second.
    pub memory_bandwidth_bytes_per_sec: f64,
    /// Dense BF16/FP16 tensor-core throughput in TFLOP/s.
    pub bf16_tflops: f64,
    /// Dense FP8 tensor-core throughput in TFLOP/s.
    pub fp8_tflops: f64,
    /// FP32 throughput in TFLOP/s.
    pub fp32_tflops: f64,
}

impl GpuSpec {
    /// Peak matmul throughput in FLOP/s when weights are stored in `weight_dtype`.
    pub fn peak_flops(&self, weight_dtype: DType) -> f64 {
        let tflops = match weight_dtype {
            DType::FP8 | DType::INT8 | DType::INT4 => self.fp8_tflops,
            DType::F16 | DType::BF16 => self.bf16_tflops,
            DType::F32 => self.fp32_tflops,
        };
        tflops * 1.0e12
    }

    /// Usable device memory after reserving a fraction for the driver / fragmentation,
    /// mirroring vLLM's `gpu_memory_utilization` knob.
    pub fn usable_memory_bytes(&self, utilization: f64) -> u64 {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "memory utilization must lie in [0, 1]"
        );
        (self.memory_bytes as f64 * utilization) as u64
    }
}

/// One of the four evaluated hardware setups: a pair of identical GPUs plus the link
/// between them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareSetup {
    /// Human-readable setup name used in figure legends.
    pub name: &'static str,
    /// GPU model.
    pub gpu: GpuKind,
    /// Number of GPUs in the setup.
    pub num_gpus: u32,
    /// Inter-GPU link.
    pub link: LinkKind,
}

impl HardwareSetup {
    /// 2× NVIDIA L4 over PCIe (low-end scenario of Table 3).
    pub fn l4_pair() -> Self {
        HardwareSetup {
            name: "2x L4 (PCIe)",
            gpu: GpuKind::L4,
            num_gpus: 2,
            link: LinkKind::PcieGen4,
        }
    }

    /// 2× NVIDIA A100 40 GB over PCIe (middle-end scenario).
    pub fn a100_pair() -> Self {
        HardwareSetup {
            name: "2x A100 40GB (PCIe)",
            gpu: GpuKind::A100_40G,
            num_gpus: 2,
            link: LinkKind::PcieGen4,
        }
    }

    /// 2× NVIDIA H100 over PCIe (high-end scenario without NVLink).
    pub fn h100_pair_pcie() -> Self {
        HardwareSetup {
            name: "2x H100 (PCIe)",
            gpu: GpuKind::H100_80G,
            num_gpus: 2,
            link: LinkKind::PcieGen5,
        }
    }

    /// 2× NVIDIA H100 connected with NVLink (high-end scenario with NVLink).
    pub fn h100_pair_nvlink() -> Self {
        HardwareSetup {
            name: "2x H100 (NVLink)",
            gpu: GpuKind::H100_80G,
            num_gpus: 2,
            link: LinkKind::NvLink4,
        }
    }

    /// The four setups in the order of Table 3.
    pub fn all() -> [HardwareSetup; 4] {
        [
            Self::l4_pair(),
            Self::a100_pair(),
            Self::h100_pair_pcie(),
            Self::h100_pair_nvlink(),
        ]
    }

    /// The per-GPU specification.
    pub fn gpu_spec(&self) -> GpuSpec {
        self.gpu.spec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_capacities() {
        assert_eq!(GpuKind::L4.spec().memory_bytes, 24 * GIB);
        assert_eq!(GpuKind::A100_40G.spec().memory_bytes, 40 * GIB);
        assert_eq!(GpuKind::H100_80G.spec().memory_bytes, 80 * GIB);
    }

    #[test]
    fn peak_flops_follow_dtype() {
        let h100 = GpuKind::H100_80G.spec();
        assert!(h100.peak_flops(DType::FP8) > h100.peak_flops(DType::BF16));
        assert!(h100.peak_flops(DType::BF16) > h100.peak_flops(DType::F32));
        // A100 does not accelerate FP8.
        let a100 = GpuKind::A100_40G.spec();
        assert_eq!(a100.peak_flops(DType::FP8), a100.peak_flops(DType::BF16));
    }

    #[test]
    fn usable_memory_scales_with_utilization() {
        let l4 = GpuKind::L4.spec();
        assert_eq!(l4.usable_memory_bytes(1.0), l4.memory_bytes);
        assert_eq!(l4.usable_memory_bytes(0.5), l4.memory_bytes / 2);
    }

    #[test]
    #[should_panic(expected = "memory utilization")]
    fn invalid_utilization_panics() {
        GpuKind::L4.spec().usable_memory_bytes(1.5);
    }

    #[test]
    fn setups_cover_table3() {
        let setups = HardwareSetup::all();
        assert_eq!(setups.len(), 4);
        assert!(setups.iter().all(|s| s.num_gpus == 2));
        assert_eq!(setups[3].link, LinkKind::NvLink4);
        assert_ne!(setups[2].link, LinkKind::NvLink4);
    }
}

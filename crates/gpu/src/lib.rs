//! Analytical GPU device model.
//!
//! The real PrefillOnly runs CUDA kernels on L4 / A100 / H100 GPUs.  This reproduction
//! replaces the hardware with three analytical components that expose exactly the
//! quantities the engine logic depends on:
//!
//! * [`GpuSpec`] / [`GpuKind`] — the device catalogue of Table 3 (HBM capacity and
//!   bandwidth, dense FLOP/s per precision, interconnect).
//! * [`CachingAllocator`] — a PyTorch-caching-allocator-style accountant that tracks
//!   live bytes, reserved bytes and the peak over a simulated timeline; it produces the
//!   memory traces plotted in Fig. 3.
//! * [`Roofline`] and [`Interconnect`] — execution-time models: a kernel takes
//!   `max(flops / peak_flops, bytes / bandwidth)` (discounted by an efficiency factor),
//!   and collectives / point-to-point copies are costed from link bandwidth + latency.
//! * [`HostLink`] and [`NetLink`] — the KV-offload links: host↔device (PCIe /
//!   NVLink-C2C) for the CPU tier and node-to-node fabrics (TCP / RDMA) for the
//!   cluster-shared network tier; only reloads are charged, serialised before
//!   stage-0 compute (see `ARCHITECTURE.md`, "Three-tier KV cost model").
//!
//! The model is calibrated against the anchor numbers published in the paper (12 GB of
//! KV per 100k Llama-8B tokens, −14 % throughput for chunked prefill at chunk 512,
//! 1.5× latency for 256 output tokens vs 1, MIL values of Table 2) so the reproduction
//! preserves the paper's relative comparisons.

mod allocator;
mod device;
mod interconnect;
mod roofline;

pub use allocator::{AllocError, AllocHandle, CachingAllocator, MemoryTrace, TracePoint};
pub use device::{GpuKind, GpuSpec, HardwareSetup};
pub use interconnect::{HostLink, Interconnect, LinkKind, NetLink, NetLinkKind};
pub use roofline::{KernelCost, Roofline};

//! Roofline execution-time model.
//!
//! A kernel's duration is modelled as
//! `max(flops / (peak_flops * compute_eff), hbm_bytes / (bandwidth * memory_eff))`
//! plus a fixed launch overhead.  Compute efficiency additionally degrades for small
//! GEMM row counts, which is what makes chunked prefilling slower than full prefilling
//! (§2.5 measures −14 % end-to-end throughput at chunk size 512) and what makes
//! batching prefill-only requests unattractive (§6.1: prefill is compute-bound).

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

use model::DType;

use crate::device::GpuSpec;

/// Work description of a single kernel (or fused group of kernels).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelCost {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes moved to/from HBM.
    pub hbm_bytes: f64,
}

impl KernelCost {
    /// A purely compute-bound kernel.
    pub fn compute(flops: f64) -> KernelCost {
        KernelCost {
            flops,
            hbm_bytes: 0.0,
        }
    }

    /// A purely bandwidth-bound kernel.
    pub fn memory(hbm_bytes: f64) -> KernelCost {
        KernelCost {
            flops: 0.0,
            hbm_bytes,
        }
    }

    /// Component-wise sum of two costs.
    pub fn merge(self, other: KernelCost) -> KernelCost {
        KernelCost {
            flops: self.flops + other.flops,
            hbm_bytes: self.hbm_bytes + other.hbm_bytes,
        }
    }
}

/// Roofline cost model for one GPU running one model precision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    peak_flops: f64,
    memory_bandwidth: f64,
    /// Fraction of peak FLOP/s achievable by large GEMMs (model FLOPs utilisation).
    compute_efficiency: f64,
    /// Fraction of peak HBM bandwidth achievable by streaming kernels.
    memory_efficiency: f64,
    /// Token count at which GEMM efficiency reaches half of its asymptote; models the
    /// tall-skinny penalty paid by chunked prefilling.
    gemm_half_saturation_tokens: f64,
    /// Fixed launch overhead charged once per kernel group.
    launch_overhead: SimDuration,
}

impl Roofline {
    /// Creates a roofline model for `spec` with matmuls executed in `weight_dtype`.
    pub fn new(spec: &GpuSpec, weight_dtype: DType) -> Roofline {
        Roofline {
            peak_flops: spec.peak_flops(weight_dtype),
            memory_bandwidth: spec.memory_bandwidth_bytes_per_sec,
            compute_efficiency: 0.55,
            memory_efficiency: 0.80,
            gemm_half_saturation_tokens: 96.0,
            launch_overhead: SimDuration::from_micros(30),
        }
    }

    /// Overrides the asymptotic compute efficiency (model FLOPs utilisation).
    pub fn with_compute_efficiency(mut self, eff: f64) -> Roofline {
        assert!(eff > 0.0 && eff <= 1.0, "efficiency must lie in (0, 1]");
        self.compute_efficiency = eff;
        self
    }

    /// Overrides the memory-bandwidth efficiency.
    pub fn with_memory_efficiency(mut self, eff: f64) -> Roofline {
        assert!(eff > 0.0 && eff <= 1.0, "efficiency must lie in (0, 1]");
        self.memory_efficiency = eff;
        self
    }

    /// Peak sustainable FLOP/s after the efficiency discount.
    pub fn effective_flops(&self) -> f64 {
        self.peak_flops * self.compute_efficiency
    }

    /// Peak sustainable HBM bandwidth after the efficiency discount.
    pub fn effective_bandwidth(&self) -> f64 {
        self.memory_bandwidth * self.memory_efficiency
    }

    /// GEMM efficiency multiplier for a kernel operating on `tokens` rows.
    ///
    /// Follows a saturating curve: tiny row counts (decode, small chunks) waste most of
    /// the tensor cores; row counts in the thousands approach the asymptote.
    pub fn gemm_efficiency(&self, tokens: u64) -> f64 {
        let t = tokens as f64;
        t / (t + self.gemm_half_saturation_tokens)
    }

    /// Duration of a kernel group described by `cost`, assuming large (saturating)
    /// GEMM shapes.
    pub fn time_for(&self, cost: KernelCost) -> SimDuration {
        self.time_for_with_rows(cost, u64::MAX)
    }

    /// Duration of a kernel group whose GEMMs operate on `rows` rows (tokens).
    pub fn time_for_with_rows(&self, cost: KernelCost, rows: u64) -> SimDuration {
        let gemm_eff = if rows == u64::MAX {
            1.0
        } else {
            self.gemm_efficiency(rows)
        };
        let compute_secs = cost.flops / (self.effective_flops() * gemm_eff);
        let memory_secs = cost.hbm_bytes / self.effective_bandwidth();
        self.launch_overhead + SimDuration::from_secs_f64(compute_secs.max(memory_secs))
    }

    /// The fixed launch overhead charged per kernel group.
    pub fn launch_overhead(&self) -> SimDuration {
        self.launch_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::GpuKind;

    fn h100() -> Roofline {
        Roofline::new(&GpuKind::H100_80G.spec(), DType::BF16)
    }

    #[test]
    fn compute_bound_kernels_scale_with_flops() {
        let r = h100();
        let t1 = r.time_for(KernelCost::compute(1.0e12)).as_secs_f64();
        let t2 = r.time_for(KernelCost::compute(2.0e12)).as_secs_f64();
        assert!(t2 > t1 * 1.8, "doubling FLOPs should roughly double time");
    }

    #[test]
    fn memory_bound_kernels_scale_with_bytes() {
        let r = h100();
        let t = r.time_for(KernelCost::memory(1.6e12)).as_secs_f64();
        // 1.6 TB over 2 TB/s * 0.8 = 1 second.
        assert!((t - 1.0).abs() < 0.01, "got {t}");
    }

    #[test]
    fn roofline_takes_the_maximum() {
        let r = h100();
        let both = KernelCost {
            flops: 1.0e12,
            hbm_bytes: 1.6e12,
        };
        let compute_only = r.time_for(KernelCost::compute(1.0e12));
        let memory_only = r.time_for(KernelCost::memory(1.6e12));
        let combined = r.time_for(both);
        assert_eq!(combined, compute_only.max(memory_only));
    }

    #[test]
    fn small_gemms_are_inefficient() {
        let r = h100();
        assert!(r.gemm_efficiency(16) < 0.2);
        assert!(r.gemm_efficiency(512) > 0.8);
        assert!(r.gemm_efficiency(16_384) > 0.99);
        let small = r.time_for_with_rows(KernelCost::compute(1.0e12), 128);
        let large = r.time_for_with_rows(KernelCost::compute(1.0e12), 16_384);
        assert!(small > large);
    }

    #[test]
    fn launch_overhead_is_a_floor() {
        let r = h100();
        let tiny = r.time_for(KernelCost::compute(1.0));
        assert!(tiny >= r.launch_overhead());
    }

    #[test]
    fn efficiency_builders_validate() {
        let r = h100()
            .with_compute_efficiency(0.6)
            .with_memory_efficiency(0.9);
        assert!(r.effective_flops() > 0.0);
        assert!(r.effective_bandwidth() > 0.0);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn invalid_efficiency_panics() {
        let _ = h100().with_compute_efficiency(0.0);
    }

    #[test]
    fn fp8_is_faster_than_bf16_on_h100() {
        let spec = GpuKind::H100_80G.spec();
        let bf16 = Roofline::new(&spec, DType::BF16);
        let fp8 = Roofline::new(&spec, DType::FP8);
        let cost = KernelCost::compute(1.0e15);
        assert!(fp8.time_for(cost) < bf16.time_for(cost));
    }
}

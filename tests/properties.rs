//! Workspace-level property tests: random small workloads replayed through the full
//! engine stack must always satisfy the serving invariants.

use proptest::prelude::*;

use gpu::HardwareSetup;
use model::ModelPreset;
use prefillonly::{Cluster, EngineConfig, EngineKind};
use simcore::SimRng;
use workload::{assign_poisson_arrivals_with, ArrivalGranularity, Dataset, PostRecommendationSpec};

fn engine_strategy() -> impl Strategy<Value = EngineKind> {
    prop_oneof![
        Just(EngineKind::prefillonly_default()),
        Just(EngineKind::PrefillOnly { lambda: 0.0 }),
        Just(EngineKind::PagedAttention),
        Just(EngineKind::chunked_default()),
        Just(EngineKind::TensorParallel),
        Just(EngineKind::PipelineParallel),
    ]
}

fn workload_strategy() -> impl Strategy<Value = PostRecommendationSpec> {
    (2u64..5, 2u64..6, 1_500u64..4_000).prop_map(|(num_users, posts_per_user, profile_mid)| {
        PostRecommendationSpec {
            num_users,
            posts_per_user,
            post_tokens: 150,
            profile_mean_tokens: profile_mid as f64,
            profile_std_tokens: 300.0,
            profile_min_tokens: profile_mid - 500,
            profile_max_tokens: profile_mid + 500,
        }
    })
}

proptest! {
    // Each case builds a cluster (profile run included) and replays a trace, so keep
    // the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn serving_invariants_hold_for_every_engine(
        kind in engine_strategy(),
        spec in workload_strategy(),
        qps in 1.0f64..30.0,
        per_request in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let dataset = Dataset::post_recommendation(&spec, &mut rng);
        let granularity = if per_request {
            ArrivalGranularity::PerRequest
        } else {
            ArrivalGranularity::PerUser
        };
        let arrivals = assign_poisson_arrivals_with(&dataset, qps, granularity, &mut rng);
        let config = EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            kind,
            dataset.max_request_tokens(),
        );
        let mut cluster = Cluster::new(&config);
        let report = cluster.run(&arrivals, qps).expect("small workloads always fit on L4");

        // Conservation: every request completes exactly once.
        prop_assert_eq!(report.records.len(), dataset.len());
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.request_id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), dataset.len());

        // Temporal sanity for every record.
        for record in &report.records {
            prop_assert!(record.started >= record.arrival);
            prop_assert!(record.completed > record.started);
            prop_assert!(record.cached_tokens <= record.total_tokens);
        }

        // Aggregates are consistent with the records.
        let max_completion = report.records.iter().map(|r| r.completed).max().unwrap();
        prop_assert_eq!(report.makespan, max_completion - simcore::SimTime::ZERO);
        prop_assert!(report.throughput_rps() > 0.0);
        prop_assert!(report.cache_hit_rate() >= 0.0 && report.cache_hit_rate() <= 1.0);
        if let Some(summary) = report.latency_summary() {
            prop_assert!(summary.p99 >= summary.p50);
            prop_assert!(summary.max >= summary.mean);
        }

        // Instances never leak queued or running work.
        for instance in cluster.instances() {
            prop_assert_eq!(instance.queue_len(), 0);
            prop_assert_eq!(instance.running_len(), 0);
        }
    }
}

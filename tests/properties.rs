//! Workspace-level property tests: random small workloads replayed through the full
//! engine stack must always satisfy the serving invariants.
//!
//! The registry-less build cannot use `proptest`, so the property sweeps a seeded set
//! of (engine, workload, load) combinations.  Each case builds a cluster (profile run
//! included) and replays a trace, so the case count stays modest.

use gpu::HardwareSetup;
use model::ModelPreset;
use prefillonly::{Cluster, EngineConfig, EngineKind};
use simcore::SimRng;
use workload::{assign_poisson_arrivals_with, ArrivalGranularity, Dataset, PostRecommendationSpec};

const ENGINES: [EngineKind; 6] = [
    EngineKind::PrefillOnly { lambda: 500.0 },
    EngineKind::PrefillOnly { lambda: 0.0 },
    EngineKind::PagedAttention,
    EngineKind::ChunkedPrefill { chunk_tokens: 512 },
    EngineKind::TensorParallel,
    EngineKind::PipelineParallel,
];

fn random_spec(rng: &mut SimRng) -> PostRecommendationSpec {
    let profile_mid = rng.gen_range(1_500u64..4_000);
    PostRecommendationSpec {
        num_users: rng.gen_range(2u64..5),
        posts_per_user: rng.gen_range(2u64..6),
        post_tokens: 150,
        profile_mean_tokens: profile_mid as f64,
        profile_std_tokens: 300.0,
        profile_min_tokens: profile_mid - 500,
        profile_max_tokens: profile_mid + 500,
    }
}

#[test]
fn serving_invariants_hold_for_every_engine() {
    for (case, kind) in (0..12u64).zip(ENGINES.iter().cycle()) {
        let mut meta = SimRng::seed_from_u64(case);
        let spec = random_spec(&mut meta);
        let qps = meta.gen_range(1.0f64..30.0);
        let granularity = if meta.gen_range(0u32..2) == 0 {
            ArrivalGranularity::PerRequest
        } else {
            ArrivalGranularity::PerUser
        };
        let mut rng = SimRng::seed_from_u64(meta.next_u64());
        let dataset = Dataset::post_recommendation(&spec, &mut rng);
        let arrivals = assign_poisson_arrivals_with(&dataset, qps, granularity, &mut rng);
        let config = EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            *kind,
            dataset.max_request_tokens(),
        );
        let mut cluster = Cluster::new(&config);
        let report = cluster
            .run(&arrivals, qps)
            .expect("small workloads always fit on L4");

        // Conservation: every request completes exactly once.
        assert_eq!(report.records.len(), dataset.len());
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.request_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), dataset.len());

        // Temporal sanity for every record.
        for record in &report.records {
            assert!(record.started >= record.arrival);
            assert!(record.completed > record.started);
            assert!(record.cached_tokens <= record.total_tokens);
        }

        // Aggregates are consistent with the records.
        let max_completion = report.records.iter().map(|r| r.completed).max().unwrap();
        assert_eq!(report.makespan, max_completion - simcore::SimTime::ZERO);
        assert!(report.throughput_rps() > 0.0);
        assert!(report.cache_hit_rate() >= 0.0 && report.cache_hit_rate() <= 1.0);
        if let Some(summary) = report.latency_summary() {
            assert!(summary.p99 >= summary.p50);
            assert!(summary.max >= summary.mean);
        }

        // Instances never leak queued or running work.
        for instance in cluster.instances() {
            assert_eq!(instance.queue_len(), 0);
            assert_eq!(instance.running_len(), 0);
        }
    }
}

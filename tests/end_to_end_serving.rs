//! Cross-crate integration tests: workload generation → cluster simulation → report.

use gpu::HardwareSetup;
use model::ModelPreset;
use prefillonly::{Cluster, EngineConfig, EngineKind, RunError};
use simcore::SimRng;
use workload::{
    assign_poisson_arrivals, assign_poisson_arrivals_with, ArrivalGranularity, Dataset,
    PostRecommendationSpec, WorkloadKind,
};

fn small_post_spec() -> PostRecommendationSpec {
    PostRecommendationSpec {
        num_users: 6,
        posts_per_user: 8,
        profile_mean_tokens: 5_000.0,
        profile_std_tokens: 600.0,
        profile_min_tokens: 4_000,
        profile_max_tokens: 6_000,
        ..PostRecommendationSpec::default()
    }
}

#[test]
fn every_request_is_served_exactly_once_and_latencies_are_consistent() {
    let mut rng = SimRng::seed_from_u64(101);
    let dataset = Dataset::post_recommendation(&small_post_spec(), &mut rng);
    let arrivals = assign_poisson_arrivals(&dataset, 4.0, &mut rng);
    let config = EngineConfig::new(
        ModelPreset::Llama31_8b,
        HardwareSetup::l4_pair(),
        EngineKind::prefillonly_default(),
        dataset.max_request_tokens(),
    );
    let mut cluster = Cluster::new(&config);
    let report = cluster.run(&arrivals, 4.0).expect("feasible");

    assert_eq!(report.records.len(), dataset.len());
    let mut ids: Vec<u64> = report.records.iter().map(|r| r.request_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), dataset.len());

    for record in &report.records {
        assert!(
            record.started >= record.arrival,
            "execution cannot start before arrival"
        );
        assert!(
            record.completed > record.started,
            "execution takes positive time"
        );
        assert!(record.cached_tokens <= record.total_tokens);
        assert_eq!(record.latency(), record.queueing() + record.execution());
    }
    // The makespan is the last completion.
    let last = report
        .records
        .iter()
        .map(|r| r.completed)
        .max()
        .expect("non-empty");
    assert_eq!(report.makespan, last - simcore::SimTime::ZERO);
}

#[test]
fn prefillonly_runs_long_contexts_where_single_gpu_baselines_cannot() {
    let mut rng = SimRng::seed_from_u64(7);
    let dataset = Dataset::generate(WorkloadKind::CreditVerification, &mut rng);
    let arrivals: Vec<_> = assign_poisson_arrivals(&dataset, 0.2, &mut rng)
        .into_iter()
        .take(4)
        .collect();
    let max_tokens = dataset.max_request_tokens();

    // Table 2 / Fig. 6e: the credit-verification workload exceeds the PagedAttention
    // and chunked-prefill MILs on A100, but PrefillOnly serves it on a single GPU.
    let build = |kind| {
        EngineConfig::new(
            ModelPreset::Qwen25_32bFp8,
            HardwareSetup::a100_pair(),
            kind,
            max_tokens,
        )
    };
    for kind in [EngineKind::PagedAttention, EngineKind::chunked_default()] {
        let err = Cluster::new(&build(kind)).run(&arrivals, 0.2).unwrap_err();
        assert!(matches!(err, RunError::WorkloadInfeasible { .. }));
    }
    let report = Cluster::new(&build(EngineKind::prefillonly_default()))
        .run(&arrivals, 0.2)
        .expect("PrefillOnly must handle 40k-60k token requests on one A100");
    assert_eq!(report.records.len(), 4);
}

#[test]
fn fig8_shape_prefillonly_outperforms_parallelism_on_credit_throughput() {
    // Offered load far above capacity; sustained throughput ordering should match
    // Fig. 8: PrefillOnly > tensor parallel, and NVLink improves tensor parallel.
    let mut rng = SimRng::seed_from_u64(88);
    let spec = workload::CreditVerificationSpec {
        num_users: 12,
        ..workload::CreditVerificationSpec::default()
    };
    let dataset = Dataset::credit_verification(&spec, &mut rng);
    let arrivals =
        assign_poisson_arrivals_with(&dataset, 50.0, ArrivalGranularity::PerRequest, &mut rng);
    let max_tokens = dataset.max_request_tokens();

    let run = |kind, hardware| {
        let config = EngineConfig::new(ModelPreset::Llama33_70bFp8, hardware, kind, max_tokens);
        Cluster::new(&config)
            .run(&arrivals, 50.0)
            .expect("feasible")
            .throughput_rps()
    };

    let prefillonly = run(
        EngineKind::prefillonly_default(),
        HardwareSetup::h100_pair_pcie(),
    );
    let tp_pcie = run(EngineKind::TensorParallel, HardwareSetup::h100_pair_pcie());
    let tp_nvlink = run(
        EngineKind::TensorParallel,
        HardwareSetup::h100_pair_nvlink(),
    );

    assert!(
        prefillonly > tp_pcie,
        "PrefillOnly ({prefillonly:.3}) must beat TP over PCIe ({tp_pcie:.3})"
    );
    assert!(
        tp_nvlink > tp_pcie,
        "NVLink must improve the tensor-parallel baseline ({tp_nvlink:.3} vs {tp_pcie:.3})"
    );
    assert!(
        prefillonly > tp_nvlink * 0.95,
        "PrefillOnly ({prefillonly:.3}) should at least match TP even with NVLink ({tp_nvlink:.3})"
    );
}

#[test]
fn user_routing_keeps_a_users_prefix_on_one_instance() {
    let mut rng = SimRng::seed_from_u64(5);
    let dataset = Dataset::post_recommendation(&small_post_spec(), &mut rng);
    let arrivals = assign_poisson_arrivals(&dataset, 3.0, &mut rng);
    let config = EngineConfig::new(
        ModelPreset::Llama31_8b,
        HardwareSetup::l4_pair(),
        EngineKind::prefillonly_default(),
        dataset.max_request_tokens(),
    );
    let mut cluster = Cluster::new(&config);
    let report = cluster.run(&arrivals, 3.0).expect("feasible");

    // Each user must be pinned to exactly one instance, and with 8 requests per user
    // sharing a 4-6k-token profile the overall hit rate must be substantial.
    for user in 0..6u64 {
        let mut instances: Vec<usize> = report
            .records
            .iter()
            .filter(|r| r.user_id == user)
            .map(|r| r.instance)
            .collect();
        instances.dedup();
        assert_eq!(
            instances.len(),
            1,
            "user {user} should stick to one instance"
        );
    }
    assert!(
        report.cache_hit_rate() > 0.5,
        "hit rate was {:.2}",
        report.cache_hit_rate()
    );
}

#[test]
fn hierarchical_kv_cache_reduces_jct_on_prefix_heavy_traces() {
    // §9 extension, end to end: on a prefix-heavy trace whose profile working set
    // exceeds the GPU prefix pool, spilling evicted profiles to CPU memory and
    // reloading them over PCIe beats recomputing them — nonzero reloads, strictly
    // lower mean JCT than discard-on-evict, and byte-identical reports between the
    // parallel and sequential replay paths.
    let spec = PostRecommendationSpec {
        num_users: 6,
        posts_per_user: 8,
        profile_mean_tokens: 5_000.0,
        profile_std_tokens: 600.0,
        profile_min_tokens: 4_000,
        profile_max_tokens: 6_000,
        ..PostRecommendationSpec::default()
    };
    let mut rng = SimRng::seed_from_u64(42);
    let dataset = Dataset::post_recommendation(&spec, &mut rng);
    // Per-request arrivals interleave users, so a user's profile goes cold (and gets
    // evicted) between their consecutive requests.
    let arrivals =
        assign_poisson_arrivals_with(&dataset, 3.0, ArrivalGranularity::PerRequest, &mut rng);
    let mut base = EngineConfig::new(
        ModelPreset::Llama31_8b,
        HardwareSetup::l4_pair(),
        EngineKind::prefillonly_default(),
        dataset.max_request_tokens(),
    );
    // Squeeze the KV pool below the per-instance profile working set.
    base.memory_utilization = 0.70;

    let discard = Cluster::new(&base).run(&arrivals, 3.0).expect("feasible");
    assert!(
        discard.cache.evicted_blocks > 0,
        "the trace must put the GPU pool under eviction pressure"
    );
    assert_eq!(discard.reloaded_tokens(), 0);

    let offload_config = base.clone().with_cpu_offload(64 << 30);
    let mut cluster = Cluster::new(&offload_config);
    let offload = cluster.run(&arrivals, 3.0).expect("feasible");
    assert!(
        offload.offload.reloaded_blocks > 0,
        "evicted profiles must be served back from the CPU tier"
    );
    assert!(offload.offload.offloaded_blocks >= offload.offload.reloaded_blocks / 2);
    assert!(offload.reloaded_tokens() > 0);
    assert!(
        offload.mean_latency_secs() < discard.mean_latency_secs(),
        "reloading over PCIe must beat recomputing: {:.4}s vs {:.4}s",
        offload.mean_latency_secs(),
        discard.mean_latency_secs()
    );

    // Determinism: the threaded replay of the offload-enabled deployment matches the
    // sequential reference byte for byte.
    let sequential = Cluster::new(&offload_config)
        .run_sequential(&arrivals, 3.0)
        .expect("feasible");
    assert_eq!(offload.records, sequential.records);
    assert_eq!(offload.offload, sequential.offload);
    assert_eq!(offload.cache, sequential.cache);
}

#[test]
fn cold_instances_joining_a_warm_deployment_benefit_from_the_net_tier() {
    // Cluster-wide KV sharing, end to end: a deployment serves a prefix-heavy trace
    // with all three KV tiers squeezed, populating the cluster-shared network tier
    // with reused profile prefixes.  A *cold* deployment (fresh instances, empty GPU
    // and CPU caches — the "new node joins" scenario) then serves the same users:
    // with the warm network tier it rehydrates profiles over the network link instead
    // of recomputing them, so its mean JCT is strictly lower than the identical cold
    // deployment with the network tier disabled (`net_kv_capacity_bytes = 0`).
    let spec = PostRecommendationSpec {
        num_users: 6,
        posts_per_user: 8,
        profile_mean_tokens: 5_000.0,
        profile_std_tokens: 600.0,
        profile_min_tokens: 4_000,
        profile_max_tokens: 6_000,
        ..PostRecommendationSpec::default()
    };
    let mut rng = SimRng::seed_from_u64(42);
    let dataset = Dataset::post_recommendation(&spec, &mut rng);
    let arrivals =
        assign_poisson_arrivals_with(&dataset, 3.0, ArrivalGranularity::PerRequest, &mut rng);
    let mut base = EngineConfig::new(
        ModelPreset::Llama31_8b,
        HardwareSetup::l4_pair(),
        EngineKind::prefillonly_default(),
        dataset.max_request_tokens(),
    );
    // Squeeze the GPU pool below the profile working set and the CPU tier to about
    // one profile, so reused prefixes cascade GPU → CPU → network.
    base.memory_utilization = 0.70;
    let with_net = base
        .clone()
        .with_cpu_offload(768 << 20)
        .with_net_kv(64 << 30);

    // Warm phase: one replay window populates the shared tier.
    let mut warm_cluster = Cluster::new(&with_net);
    warm_cluster.run(&arrivals, 3.0).expect("feasible");
    let warm_pool = warm_cluster.net_pool().expect("net tier enabled").clone();
    assert!(
        warm_pool.resident_blocks() > 0,
        "the warm window must feed the shared tier"
    );

    // Cold join: fresh instances, warm shared tier.
    let cold_with_net = Cluster::with_warm_net_pool(&with_net, warm_pool)
        .run(&arrivals, 3.0)
        .expect("feasible");
    // The same cold deployment without the network tier recomputes everything.
    let cold_without = Cluster::new(&base.clone().with_cpu_offload(768 << 20).with_net_kv(0))
        .run(&arrivals, 3.0)
        .expect("feasible");

    assert!(
        cold_with_net.offload.net_reloaded_blocks > 0,
        "early requests must be served from the warm network tier"
    );
    assert!(cold_with_net.net_reloaded_tokens() > 0);
    assert_eq!(cold_without.net_reloaded_tokens(), 0);
    assert!(
        cold_with_net.mean_latency_secs() < cold_without.mean_latency_secs(),
        "network-tier reloads must beat recomputation: {:.4}s vs {:.4}s",
        cold_with_net.mean_latency_secs(),
        cold_without.mean_latency_secs()
    );

    // The benefit concentrates where the paper's cluster model predicts: each
    // user's *first* request on the cold deployment (the cold-start prefill) is
    // what the warm tier accelerates.
    let first_request_mean = |report: &prefillonly::RunReport| {
        let mut seen = std::collections::HashSet::new();
        let mut total = 0.0;
        let mut count = 0u32;
        let mut records = report.records.clone();
        records.sort_by_key(|r| (r.arrival, r.request_id));
        for record in &records {
            if seen.insert(record.user_id) {
                total += record.execution().as_secs_f64();
                count += 1;
            }
        }
        total / f64::from(count)
    };
    assert!(
        first_request_mean(&cold_with_net) < first_request_mean(&cold_without),
        "per-user cold-start prefills must get faster"
    );
}

#[test]
fn within_window_propagation_beats_window_boundary_sharing_on_a_single_window_trace() {
    // The propagation tentpole, end to end: a *long single-window* trace over the
    // shared-prefix fleet workload (cohorts of users sharing a 5k-token cross-user
    // prefix).  Sticky routing splits each cohort across both instances, so one
    // instance computes a cohort prefix that the other instance's members will need
    // — but under window-boundary-only sharing (`net_propagation_ms = 0`) a single
    // `run` call never lets those spills cross instances, and the second instance
    // recomputes the prefix from scratch.  With a finite propagation delay the
    // spills surface at epoch boundaries mid-window: the late cohort members reload
    // the prefix over the fabric instead, and mean JCT drops strictly — with the
    // replay byte-identical across the parallel and sequential paths, and the
    // accounting attributing the reloads to mid-window propagation.
    // The scenario definition is shared with `ablation_net_kv`'s propagation sweep
    // (see `prefillonly_bench::scenarios`): three cohorts of four users sharing a
    // 5k-token prefix, per-request arrivals spreading 72 requests over ~24 s of
    // virtual time — roughly a dozen 2 s propagation epochs, all inside ONE replay
    // window — with the GPU pool and CPU tier squeezed so reused prefixes cascade
    // GPU → CPU → network within the window.
    let (base, arrivals) = prefillonly_bench::shared_prefix_fleet_pressure();
    let qps = prefillonly_bench::SHARED_PREFIX_FLEET_QPS;

    // Window-boundary-only propagation: one run call = one window, so the shared
    // tier is fed but never read across instances within this trace.
    let boundary_only = Cluster::new(&base).run(&arrivals, qps).expect("feasible");
    assert!(
        boundary_only.offload.net_offloaded_blocks > 0,
        "the scenario must feed the shared tier in-window"
    );
    assert_eq!(boundary_only.net_propagated_tokens(), 0);
    assert_eq!(boundary_only.offload.net_propagated_reload_blocks, 0);

    // Finite propagation: spills surface cluster-wide two seconds after they
    // happen, still inside the same window.
    let propagating_config = base.clone().with_net_propagation_ms(2_000);
    let propagating = Cluster::new(&propagating_config)
        .run(&arrivals, qps)
        .expect("feasible");
    let sequential = Cluster::new(&propagating_config)
        .run_sequential(&arrivals, qps)
        .expect("feasible");
    assert_eq!(propagating.records, sequential.records);
    assert_eq!(propagating.offload, sequential.offload);
    assert_eq!(propagating.cache, sequential.cache);

    assert!(
        propagating.offload.net_propagated_reload_blocks > 0,
        "mid-window propagation must enable reloads the boundary model missed"
    );
    assert!(propagating.net_propagated_tokens() > 0);
    assert!(
        propagating.net_propagated_tokens() <= propagating.net_reloaded_tokens(),
        "propagated reloads are a subset of net reloads"
    );
    assert!(
        propagating.mean_latency_secs() < boundary_only.mean_latency_secs(),
        "within-window propagation must beat window-boundary sharing: {:.4}s vs {:.4}s",
        propagating.mean_latency_secs(),
        boundary_only.mean_latency_secs()
    );
}

#[test]
fn cache_aware_routing_beats_sticky_on_a_shared_prefix_multi_user_trace() {
    // The routing-layer tentpole, end to end: six users form two cohorts that share
    // a 6,000-token prefix *across* users (cohort A: users 0-2, cohort B: users
    // 3-5).  A warmup window computes prefix A on one instance and prefix B on the
    // other; the main window's first appearances are ordered so §7.1 sticky
    // round-robin splits each cohort across both instances — recomputing each
    // cohort's prefix cold on the instance that never held it — while cache-aware
    // routing reads the window-start prefix probes and consolidates each cohort
    // onto its warm instance.  Mean JCT must be strictly lower under cache-aware
    // routing, with identical per-instance user counts (the win is cache reuse,
    // not load shifting).
    use prefillonly::{RoutingPolicyKind, RoutingReason};
    use simcore::SimTime;
    use std::sync::Arc;
    use workload::{ArrivalPattern, RequestTemplate};

    const PREFIX_TOKENS: u32 = 6_000;
    const SUFFIX_TOKENS: u32 = 150;
    let cohort_prefix = |user: u64| -> std::ops::Range<u32> {
        if user < 3 {
            0..PREFIX_TOKENS
        } else {
            1_000_000..1_000_000 + PREFIX_TOKENS
        }
    };
    let request = |user: u64, round: u32, at_ms: u64| -> ArrivalPattern {
        let mut tokens: Vec<u32> = cohort_prefix(user).collect();
        let suffix_start = 2_000_000 + user as u32 * 10_000 + round * 1_000;
        tokens.extend(suffix_start..suffix_start + SUFFIX_TOKENS);
        ArrivalPattern {
            template: RequestTemplate {
                user_id: user,
                tokens: Arc::new(tokens),
                shared_prefix_tokens: u64::from(PREFIX_TOKENS),
                decode_tokens: 0,
            },
            arrival: SimTime::from_millis(at_ms),
            sticky: None,
        }
    };

    // Warmup: user 0 computes prefix A (lands on instance 0), user 3 prefix B
    // (instance 1) — identical placement under both policies.
    let warmup = vec![request(0, 0, 0), request(3, 0, 500)];
    // Main window: first appearances ordered A, A, B, B so sticky round-robin
    // (continuing from the two warmup users) pins user 1 → 0, user 2 → 1,
    // user 4 → 0, user 5 → 1, splitting both cohorts.
    let user_order = [1u64, 2, 4, 5, 0, 3];
    let mut main = Vec::new();
    for round in 0..4u32 {
        for (pos, &user) in user_order.iter().enumerate() {
            let at = (u64::from(round) * user_order.len() as u64 + pos as u64) * 700;
            main.push(request(user, round + 1, at));
        }
    }

    let base = EngineConfig::new(
        ModelPreset::Llama31_8b,
        HardwareSetup::l4_pair(),
        EngineKind::prefillonly_default(),
        u64::from(PREFIX_TOKENS + SUFFIX_TOKENS),
    );
    let run = |routing: RoutingPolicyKind| {
        let mut cluster = Cluster::new(&base.clone().with_routing(routing));
        cluster.run(&warmup, 2.0).expect("warmup feasible");
        cluster.run(&main, 2.0).expect("main window feasible")
    };
    let sticky = run(RoutingPolicyKind::StickyUser);
    let cache_aware = run(RoutingPolicyKind::CacheAware);

    // Same request count, and the same 3-users-per-instance balance.
    assert_eq!(sticky.records.len(), main.len());
    assert_eq!(cache_aware.records.len(), main.len());
    let users_on = |report: &prefillonly::RunReport, instance: usize| {
        let mut users: Vec<u64> = report
            .records
            .iter()
            .filter(|r| r.instance == instance)
            .map(|r| r.user_id)
            .collect();
        users.sort_unstable();
        users.dedup();
        users
    };
    assert_eq!(users_on(&sticky, 0).len(), 3);
    assert_eq!(users_on(&cache_aware, 0).len(), 3);
    // Cache-aware consolidates the cohorts; sticky splits both.
    assert_eq!(users_on(&cache_aware, 0), vec![0, 1, 2]);
    assert_eq!(users_on(&cache_aware, 1), vec![3, 4, 5]);
    assert_ne!(users_on(&sticky, 0), vec![0, 1, 2]);

    // Every main-window cache-aware decision followed a modelled prefix hit, and
    // the recorded reasons say so.
    assert!(cache_aware
        .records
        .iter()
        .all(|r| r.routing == RoutingReason::DeepestPrefix));
    assert!(sticky.records.iter().all(|r| matches!(
        r.routing,
        RoutingReason::StickyNew | RoutingReason::StickyExisting
    )));

    // The acceptance criterion: strictly lower mean JCT and strictly higher hit
    // rate — the cohort prefixes are computed once per instance instead of twice.
    assert!(cache_aware.cache_hit_rate() > sticky.cache_hit_rate());
    assert!(
        cache_aware.mean_latency_secs() < sticky.mean_latency_secs(),
        "cache-aware routing must beat sticky on mean JCT: {:.4}s vs {:.4}s",
        cache_aware.mean_latency_secs(),
        sticky.mean_latency_secs()
    );
}

#[test]
fn cache_aware_routing_beats_sticky_on_mean_ttft_on_a_multi_turn_decode_trace() {
    // The decode-stage tentpole, end to end: the two-cohort shared-prefix shape of
    // the test above, but every request is a conversation turn — its sequence is
    // the cohort prefix plus the user's full session history (inputs *and decoded
    // replies* of earlier rounds) plus a fresh input, and the engine decodes a
    // 96-token reply that the next round re-hits as cached prefix.  Sticky
    // round-robin splits each cohort across both instances, recomputing the
    // 6,000-token cohort prefix cold; cache-aware routing consolidates each cohort
    // onto its warm instance.  The win must show up on **mean TTFT** — the
    // decode-side metric: prefill work ends at the first token, so cheaper
    // prefills pull the first token earlier while the decode tail is identical in
    // length — at identical per-instance user balance.
    use prefillonly::{RoutingPolicyKind, RoutingReason};
    use simcore::SimTime;
    use std::sync::Arc;
    use workload::{ArrivalPattern, RequestTemplate};

    const PREFIX_TOKENS: u32 = 6_000;
    const INPUT_TOKENS: u32 = 150;
    const REPLY_TOKENS: u32 = 96;
    const ROUNDS: u32 = 5; // warmup round 0 + four main-window rounds
    let cohort_prefix = |user: u64| -> std::ops::Range<u32> {
        if user < 3 {
            0..PREFIX_TOKENS
        } else {
            1_000_000..1_000_000 + PREFIX_TOKENS
        }
    };
    // Round r's sequence replays the whole session: cohort prefix, then every
    // earlier round's input and decoded reply, then round r's input and the reply
    // the engine is about to decode (the trailing `decode_tokens`).
    let request = |user: u64, round: u32, at_ms: u64| -> ArrivalPattern {
        let mut tokens: Vec<u32> = cohort_prefix(user).collect();
        for r in 0..=round {
            let input_start = 2_000_000 + user as u32 * 100_000 + r * 1_000;
            tokens.extend(input_start..input_start + INPUT_TOKENS);
            let reply_start = 3_000_000 + user as u32 * 100_000 + r * 1_000;
            tokens.extend(reply_start..reply_start + REPLY_TOKENS);
        }
        ArrivalPattern {
            template: RequestTemplate {
                user_id: user,
                tokens: Arc::new(tokens),
                shared_prefix_tokens: u64::from(PREFIX_TOKENS),
                decode_tokens: u64::from(REPLY_TOKENS),
            },
            arrival: SimTime::from_millis(at_ms),
            sticky: None,
        }
    };

    // Warmup: user 0 computes prefix A (lands on instance 0), user 3 prefix B
    // (instance 1) — identical placement under both policies, and each warmup
    // turn's decoded reply is committed into the warm instance's prefix cache.
    let warmup = vec![request(0, 0, 0), request(3, 0, 500)];
    // Main window: first appearances ordered A, A, B, B so sticky round-robin
    // splits both cohorts, exactly as in the JCT test above.
    let user_order = [1u64, 2, 4, 5, 0, 3];
    let mut main = Vec::new();
    for round in 1..ROUNDS {
        for (pos, &user) in user_order.iter().enumerate() {
            let at = (u64::from(round - 1) * user_order.len() as u64 + pos as u64) * 700;
            main.push(request(user, round, at));
        }
    }

    let max_tokens = u64::from(PREFIX_TOKENS + ROUNDS * (INPUT_TOKENS + REPLY_TOKENS));
    let base = EngineConfig::new(
        ModelPreset::Llama31_8b,
        HardwareSetup::l4_pair(),
        EngineKind::prefillonly_default(),
        max_tokens,
    );
    let run = |routing: RoutingPolicyKind| {
        let mut cluster = Cluster::new(&base.clone().with_routing(routing));
        cluster.run(&warmup, 2.0).expect("warmup feasible");
        cluster.run(&main, 2.0).expect("main window feasible")
    };
    let sticky = run(RoutingPolicyKind::StickyUser);
    let cache_aware = run(RoutingPolicyKind::CacheAware);

    // Same request count and the same 3-users-per-instance balance: the TTFT win
    // below is cache reuse, not load shifting.
    assert_eq!(sticky.records.len(), main.len());
    assert_eq!(cache_aware.records.len(), main.len());
    let users_on = |report: &prefillonly::RunReport, instance: usize| {
        let mut users: Vec<u64> = report
            .records
            .iter()
            .filter(|r| r.instance == instance)
            .map(|r| r.user_id)
            .collect();
        users.sort_unstable();
        users.dedup();
        users
    };
    assert_eq!(users_on(&sticky, 0).len(), 3);
    assert_eq!(users_on(&cache_aware, 0).len(), 3);
    assert_eq!(users_on(&cache_aware, 0), vec![0, 1, 2]);
    assert_eq!(users_on(&cache_aware, 1), vec![3, 4, 5]);
    assert_ne!(users_on(&sticky, 0), vec![0, 1, 2]);
    assert!(cache_aware
        .records
        .iter()
        .all(|r| r.routing == RoutingReason::DeepestPrefix));

    // The decode stage is genuinely on: every turn decodes its reply, TPOT is
    // defined, and the first token strictly precedes completion.
    for report in [&sticky, &cache_aware] {
        assert_eq!(
            report.decode_tokens(),
            main.len() as u64 * u64::from(REPLY_TOKENS)
        );
        assert!(report.tpot_summary().is_some());
        assert!(report.records.iter().all(|r| r.first_token < r.completed));
    }

    // The acceptance criterion: strictly lower mean TTFT (and strictly higher hit
    // rate) — consolidation makes each turn's prefill a pure extension of the
    // session's cached sequence, decoded replies included.
    assert!(cache_aware.cache_hit_rate() > sticky.cache_hit_rate());
    assert!(
        cache_aware.mean_ttft_secs() < sticky.mean_ttft_secs(),
        "cache-aware routing must beat sticky on mean TTFT: {:.4}s vs {:.4}s",
        cache_aware.mean_ttft_secs(),
        sticky.mean_ttft_secs()
    );
}

#[test]
fn warm_join_recovers_strictly_faster_than_cold_join_on_a_shared_prefix_fleet() {
    // The elastic-fleet tentpole, end to end: a two-instance deployment serves
    // three cohorts of four users sharing 5k-token cross-user prefixes with all
    // three KV tiers squeezed (the `shared_prefix_fleet_pressure` shape).  One
    // instance drains early — its drain-to-net handoff publishes the cohort
    // prefixes it computed into the shared tier — and a replacement joins later;
    // six *new* cohort members first arrive after the join, and sticky
    // round-robin re-pinning spreads them (and all three cohorts) across both
    // routable slots.  A *warm* join (attached to the shared tier) rehydrates the
    // leaver's prefixes over the fabric; a *cold* join (detached for life)
    // recomputes them — so post-join mean JCT must be strictly lower under the
    // warm join, with the difference visible in the joiner's own records.
    // The scenario definition is shared with `ablation_elastic`'s warmth sweep
    // (see `prefillonly_bench::scenarios`).
    use simcore::SimTime;
    use workload::{MembershipChange, MembershipEvent, MembershipSchedule};

    let (config, arrivals) = prefillonly_bench::elastic_fleet_handoff();
    let qps = prefillonly_bench::ELASTIC_FLEET_QPS;

    let run = |attached: bool| {
        let mut cluster = Cluster::new(&config);
        cluster.schedule_membership(MembershipSchedule::new(vec![
            MembershipEvent {
                at: SimTime::from_millis(prefillonly_bench::ELASTIC_DRAIN_AT_MS),
                change: MembershipChange::Drain { spill: true },
            },
            MembershipEvent {
                at: SimTime::from_millis(prefillonly_bench::ELASTIC_JOIN_AT_MS),
                change: MembershipChange::Join {
                    attached,
                    role: workload::InstanceRole::Colocated,
                },
            },
        ]));
        let report = cluster.run(&arrivals, qps).expect("feasible");
        let log = cluster.membership_log().to_vec();
        let drains = cluster.drain_records().to_vec();
        (report, log, drains)
    };
    let (warm, warm_log, warm_drains) = run(true);
    let (cold, cold_log, _) = run(false);

    // Both runs apply the same schedule at the same boundaries onto the same
    // slots, and the leaver's handoff actually published KV.
    assert_eq!(warm_log.len(), 2);
    assert_eq!(cold_log.len(), 2);
    assert_eq!(warm_log[1].at, cold_log[1].at);
    assert_eq!(warm_log[1].slot, cold_log[1].slot);
    assert_eq!(warm_drains.len(), 1);
    assert!(
        warm_drains[0].spill.gpu_blocks > 0,
        "the leaver must hand its GPU-resident cohort prefixes to the shared tier"
    );
    let (joined_at, joiner) = (warm_log[1].at, warm_log[1].slot);

    // The joiner actually received work in both runs (sticky re-pins the late
    // users round-robin across both routable slots).  The joiner reuses the
    // drained slot, so only post-join records count.
    let on_joiner = |report: &prefillonly::RunReport| {
        report
            .records
            .iter()
            .filter(|r| r.instance == joiner && r.arrival >= joined_at)
            .count()
    };
    assert!(on_joiner(&warm) > 0, "the warm joiner must serve requests");
    assert!(on_joiner(&cold) > 0, "the cold joiner must serve requests");

    // Warm entry shows up as network-tier reloads on the joiner; a cold (detached)
    // joiner can never touch the shared tier.
    let joiner_net_tokens = |report: &prefillonly::RunReport| {
        report
            .records
            .iter()
            .filter(|r| r.instance == joiner && r.arrival >= joined_at)
            .map(|r| r.net_reloaded_tokens)
            .sum::<u64>()
    };
    assert!(
        joiner_net_tokens(&warm) > 0,
        "the warm joiner must rehydrate cohort prefixes from the shared tier"
    );
    assert_eq!(joiner_net_tokens(&cold), 0);

    // The acceptance criterion: strictly lower mean JCT over the post-join phase.
    let post_join_mean = |report: &prefillonly::RunReport| {
        let latencies: Vec<f64> = report
            .records
            .iter()
            .filter(|r| r.arrival >= joined_at)
            .map(|r| r.latency().as_secs_f64())
            .collect();
        assert!(!latencies.is_empty());
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    assert!(
        post_join_mean(&warm) < post_join_mean(&cold),
        "warm join must recover faster than cold join: {:.4}s vs {:.4}s",
        post_join_mean(&warm),
        post_join_mean(&cold)
    );
}

#[test]
fn autoscaler_beats_a_static_under_provisioned_fleet() {
    // Elastic-fleet satellite, end to end: the shared-prefix fleet trace replayed
    // on a deployment squeezed to ONE instance (a drain scheduled at t = 0).  The
    // static fleet stays under-provisioned for the whole trace; the autoscaled
    // fleet notices the queue at the first epoch boundary and scales back up to
    // two instances (a derived, warm join) — so its mean JCT must be strictly
    // lower, and every derived event must be logged as autoscaled.
    use simcore::SimTime;
    use workload::{MembershipChange, MembershipEvent, MembershipSchedule};

    let (base, arrivals) = prefillonly_bench::shared_prefix_fleet_pressure();
    let qps = prefillonly_bench::SHARED_PREFIX_FLEET_QPS;
    let config = base.with_net_propagation_ms(2_000);
    let squeeze = MembershipSchedule::new(vec![MembershipEvent {
        at: SimTime::ZERO,
        change: MembershipChange::Drain { spill: true },
    }]);

    let mut static_cluster = Cluster::new(&config);
    static_cluster.schedule_membership(squeeze.clone());
    let static_report = static_cluster.run(&arrivals, qps).expect("feasible");
    assert_eq!(static_cluster.membership_log().len(), 1);
    assert_eq!(static_cluster.num_active_instances(), 1);

    let autoscaled_config = config.with_autoscaler(prefillonly::AutoscalerPolicy {
        scale_up_outstanding_tokens: 20_000,
        scale_down_outstanding_tokens: 0,
        cooldown_epochs: 1,
        min_instances: 1,
        max_instances: 2,
    });
    let mut autoscaled_cluster = Cluster::new(&autoscaled_config);
    autoscaled_cluster.schedule_membership(squeeze);
    let autoscaled_report = autoscaled_cluster.run(&arrivals, qps).expect("feasible");

    let log = autoscaled_cluster.membership_log();
    assert!(
        log.iter().any(|applied| applied.autoscaled
            && matches!(
                applied.change,
                MembershipChange::Join { attached: true, .. }
            )),
        "the autoscaler must derive a warm join under queue pressure"
    );
    assert!(log.iter().skip(1).all(|applied| applied.autoscaled));
    assert_eq!(autoscaled_cluster.num_active_instances(), 2);
    assert!(
        autoscaled_report.mean_latency_secs() < static_report.mean_latency_secs(),
        "scaling back up must beat staying under-provisioned: {:.4}s vs {:.4}s",
        autoscaled_report.mean_latency_secs(),
        static_report.mean_latency_secs()
    );
}

#[test]
fn reports_are_deterministic_for_a_fixed_seed() {
    let build = || {
        let mut rng = SimRng::seed_from_u64(404);
        let dataset = Dataset::post_recommendation(&small_post_spec(), &mut rng);
        let arrivals = assign_poisson_arrivals(&dataset, 5.0, &mut rng);
        let config = EngineConfig::new(
            ModelPreset::Llama31_8b,
            HardwareSetup::l4_pair(),
            EngineKind::prefillonly_default(),
            dataset.max_request_tokens(),
        );
        Cluster::new(&config).run(&arrivals, 5.0).expect("feasible")
    };
    let a = build();
    let b = build();
    assert_eq!(a.records.len(), b.records.len());
    assert_eq!(a.makespan, b.makespan);
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra, rb, "identical seeds must yield identical traces");
    }
}

#[test]
fn overload_degrades_latency_but_not_correctness() {
    let mut rng = SimRng::seed_from_u64(31);
    let dataset = Dataset::post_recommendation(&small_post_spec(), &mut rng);
    let config = EngineConfig::new(
        ModelPreset::Llama31_8b,
        HardwareSetup::l4_pair(),
        EngineKind::PagedAttention,
        dataset.max_request_tokens(),
    );
    let mut latencies = Vec::new();
    for qps in [1.0, 30.0] {
        let arrivals = assign_poisson_arrivals(&dataset, qps, &mut SimRng::seed_from_u64(32));
        let report = Cluster::new(&config).run(&arrivals, qps).expect("feasible");
        assert_eq!(report.records.len(), dataset.len());
        latencies.push(report.mean_latency_secs());
    }
    assert!(
        latencies[1] > latencies[0],
        "30 qps should be slower than 1 qps ({:?})",
        latencies
    );
}
